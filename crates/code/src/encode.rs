//! Systematic Reed–Solomon encoding.

use crate::{CodeError, RsCode};
use rsmem_gf::{Poly, Symbol};

/// Systematic encoding: the codeword polynomial is
/// `c(x) = d(x)·x^{n−k} + (d(x)·x^{n−k} mod g(x))`,
/// which is divisible by `g(x)` and carries the data verbatim in its top
/// `k` coefficients.
pub(crate) fn encode_systematic(code: &RsCode, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError> {
    if data.len() != code.k() {
        return Err(CodeError::DatawordLength {
            got: data.len(),
            expected: code.k(),
        });
    }
    code.check_symbols(data)?;
    let field = code.field();
    let parity_len = code.parity_symbols();
    let shifted = Poly::from_coeffs(data.iter().copied()).shift_up(parity_len);
    let (_, rem) = shifted
        .div_rem(code.generator(), field)
        .expect("generator is nonzero by construction");
    let mut word = vec![0 as Symbol; code.n()];
    for (i, &c) in rem.coeffs().iter().enumerate() {
        word[i] = c;
    }
    word[parity_len..].copy_from_slice(data);
    Ok(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsmem_gf::GfField;

    fn word_poly(word: &[Symbol]) -> Poly {
        Poly::from_coeffs(word.iter().copied())
    }

    #[test]
    fn codeword_polynomial_divisible_by_generator() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = vec![3, 1, 4, 1, 5, 9, 2, 6, 8];
        let word = code.encode(&data).unwrap();
        let (_, rem) = word_poly(&word)
            .div_rem(code.generator(), code.field())
            .unwrap();
        assert!(rem.is_zero());
    }

    #[test]
    fn all_generator_roots_vanish_on_codeword() {
        let code = RsCode::with_first_root(15, 11, 4, 1).unwrap();
        let data: Vec<Symbol> = (0..11).map(|i| (i * 7 + 3) % 16).collect();
        let word = code.encode(&data).unwrap();
        let f: &GfField = code.field();
        let p = word_poly(&word);
        for j in 0..code.parity_symbols() as u32 {
            assert_eq!(p.eval(f, f.alpha_pow(code.first_root() + j)), 0);
        }
    }

    #[test]
    fn zero_dataword_encodes_to_zero_codeword() {
        let code = RsCode::new(18, 16, 8).unwrap();
        let word = code.encode(&[0; 16]).unwrap();
        assert!(word.iter().all(|&s| s == 0));
    }

    #[test]
    fn encoding_is_linear() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let f = code.field();
        let a: Vec<Symbol> = (0..9).map(|i| (i * 3 + 1) % 16).collect();
        let b: Vec<Symbol> = (0..9).map(|i| (i * 5 + 2) % 16).collect();
        let sum: Vec<Symbol> = a.iter().zip(&b).map(|(&x, &y)| f.add(x, y)).collect();
        let wa = code.encode(&a).unwrap();
        let wb = code.encode(&b).unwrap();
        let wsum = code.encode(&sum).unwrap();
        let xor: Vec<Symbol> = wa.iter().zip(&wb).map(|(&x, &y)| x ^ y).collect();
        assert_eq!(wsum, xor);
    }

    #[test]
    fn rejects_wrong_length_and_bad_symbols() {
        let code = RsCode::new(15, 9, 4).unwrap();
        assert!(matches!(
            code.encode(&[1, 2, 3]),
            Err(CodeError::DatawordLength {
                got: 3,
                expected: 9
            })
        ));
        let mut data = vec![0 as Symbol; 9];
        data[4] = 16; // out of GF(16)
        assert!(matches!(
            code.encode(&data),
            Err(CodeError::SymbolOutOfRange { index: 4, .. })
        ));
    }

    #[test]
    fn shortened_code_matches_parent_code_prefix() {
        // RS(12,8) over GF(16) is RS(15,11) with three top data symbols zero.
        let short = RsCode::new(12, 8, 4).unwrap();
        let parent = RsCode::new(15, 11, 4).unwrap();
        let data: Vec<Symbol> = (1..=8).collect();
        let mut padded = data.clone();
        padded.extend_from_slice(&[0, 0, 0]);
        let sw = short.encode(&data).unwrap();
        let pw = parent.encode(&padded).unwrap();
        assert_eq!(&pw[..12], &sw[..]);
        assert!(pw[12..].iter().all(|&s| s == 0));
    }
}
