use rsmem_gf::GfError;
use std::error::Error;
use std::fmt;

/// Errors arising from code construction or misuse of the codec API.
///
/// Uncorrectable channel conditions are *not* errors in this sense — they
/// are reported as [`crate::DecodeOutcome::Failure`], because a detected
/// decoding failure is a normal, modelled event for the memory systems
/// built on top of this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// Invalid (n, k, m) combination.
    InvalidParameters {
        /// Codeword length in symbols.
        n: usize,
        /// Dataword length in symbols.
        k: usize,
        /// Symbol width in bits.
        m: u32,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The supplied dataword does not have exactly `k` symbols.
    DatawordLength {
        /// Symbols supplied.
        got: usize,
        /// Symbols expected (`k`).
        expected: usize,
    },
    /// The supplied word does not have exactly `n` symbols.
    CodewordLength {
        /// Symbols supplied.
        got: usize,
        /// Symbols expected (`n`).
        expected: usize,
    },
    /// An erasure position is out of `0..n` or repeated.
    BadErasure {
        /// The offending position.
        position: usize,
        /// Codeword length.
        n: usize,
    },
    /// A symbol value does not fit in the field.
    SymbolOutOfRange {
        /// Index within the supplied slice.
        index: usize,
        /// The offending value.
        value: u32,
    },
    /// An underlying field error (should not occur for validated inputs).
    Field(GfError),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { n, k, m, reason } => {
                write!(f, "invalid RS({n},{k}) over GF(2^{m}): {reason}")
            }
            CodeError::DatawordLength { got, expected } => {
                write!(f, "dataword has {got} symbols, expected {expected}")
            }
            CodeError::CodewordLength { got, expected } => {
                write!(f, "codeword has {got} symbols, expected {expected}")
            }
            CodeError::BadErasure { position, n } => {
                write!(
                    f,
                    "erasure position {position} invalid for codeword length {n}"
                )
            }
            CodeError::SymbolOutOfRange { index, value } => {
                write!(f, "symbol {value} at index {index} out of field range")
            }
            CodeError::Field(e) => write!(f, "field error: {e}"),
        }
    }
}

impl Error for CodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodeError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GfError> for CodeError {
    fn from(e: GfError) -> Self {
        CodeError::Field(e)
    }
}
