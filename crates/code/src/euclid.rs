//! Sugiyama (extended-Euclidean) key-equation solver for
//! errors-and-erasures decoding.
//!
//! Given the syndrome polynomial `S(x)` and erasure locator `Γ(x)` of
//! degree `ρ`, the modified syndrome is `Ξ(x) = S(x)·Γ(x) mod x^{2t}`
//! (`2t = n − k`). The error locator `Λ(x)` and combined evaluator `Ω(x)`
//! satisfy the key equation
//!
//! ```text
//! Λ(x)·Ξ(x) ≡ Ω(x)   (mod x^{2t}),
//! deg Λ ≤ (2t − ρ)/2,     deg Ω < (2t + ρ)/2.
//! ```
//!
//! Running the Euclidean remainder sequence on `(x^{2t}, Ξ)` until the
//! remainder degree drops below `(2t + ρ)/2` yields exactly this pair.

use crate::RsCode;
use rsmem_gf::{Poly, Symbol};

/// Solves the key equation, returning `(error_locator, evaluator)`.
///
/// The returned locator is normalized to constant term 1 when possible;
/// the evaluator is scaled consistently so Forney's formula stays valid.
/// Returns `None` when the remainder sequence degenerates (an
/// uncorrectable pattern that the caller reports as a decode failure).
pub(crate) fn solve_key_equation(
    code: &RsCode,
    modified_syndrome: &Poly,
    erasure_count: usize,
) -> Option<(Poly, Poly)> {
    let field = code.field();
    let two_t = code.parity_symbols();
    let stop = (two_t + erasure_count).div_ceil(2);
    let x2t = Poly::monomial(1, two_t);
    let (omega, lambda) = Poly::partial_xgcd(&x2t, modified_syndrome, stop, field).ok()?;
    if lambda.is_zero() {
        return None;
    }
    // Normalize so Λ(0) = 1 (locators are products of (1 − X x) factors).
    let c0 = lambda.coeff(0);
    if c0 == 0 {
        // Λ(0) = 0 means x divides Λ — not a valid locator.
        return None;
    }
    let c0_inv = field.inv(c0).ok()?;
    let lambda_n = lambda.scale(c0_inv, field);
    let omega_n = omega.scale(c0_inv, field);
    Some((lambda_n, omega_n))
}

/// Computes the modified syndrome `Ξ(x) = S(x)·Γ(x) mod x^{2t}`.
pub(crate) fn modified_syndrome(code: &RsCode, s: &Poly, gamma: &Poly) -> Poly {
    s.mul(gamma, code.field())
        .truncate_mod_xk(code.parity_symbols())
}

#[allow(dead_code)]
pub(crate) fn poly_from(coeffs: &[Symbol]) -> Poly {
    Poly::from_coeffs(coeffs.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locator::erasure_locator;
    use crate::syndrome::syndrome_poly;

    #[test]
    fn key_equation_holds_for_single_error() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let f = code.field();
        let word = {
            let mut w = code.encode(&[0; 9]).unwrap();
            w[6] ^= 9;
            w
        };
        let s = syndrome_poly(&code, &word);
        let gamma = Poly::one();
        let xi = modified_syndrome(&code, &s, &gamma);
        let (lambda, omega) = solve_key_equation(&code, &xi, 0).unwrap();
        // Λ must vanish at α^{-6}.
        assert_eq!(lambda.eval(f, f.alpha_pow_signed(-6)), 0);
        // Λ·Ξ ≡ Ω (mod x^{2t}).
        let lhs = lambda.mul(&xi, f).truncate_mod_xk(code.parity_symbols());
        assert_eq!(lhs, omega.truncate_mod_xk(code.parity_symbols()));
    }

    #[test]
    fn erasures_only_yields_trivial_error_locator() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let word = {
            let mut w = code.encode(&[1; 9]).unwrap();
            w[2] ^= 3;
            w[10] ^= 7;
            w
        };
        let erasures = [2usize, 10];
        let s = syndrome_poly(&code, &word);
        let gamma = erasure_locator(&code, &erasures);
        let xi = modified_syndrome(&code, &s, &gamma);
        let (lambda, _) = solve_key_equation(&code, &xi, erasures.len()).unwrap();
        // With all corruption erased, no random-error locator is needed.
        assert_eq!(lambda.degree(), Some(0));
    }
}
