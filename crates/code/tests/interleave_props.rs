//! Property tests for the symbol interleaver: round-trips, coordinate
//! mapping, and the burst-dispersal guarantee the paper relies on when
//! stacking RS words across memory modules.

use proptest::prelude::*;
use rsmem_code::Interleaver;
use rsmem_gf::Symbol;

fn words_strategy() -> impl Strategy<Value = (usize, Vec<Vec<Symbol>>)> {
    (1usize..8, 0usize..24).prop_flat_map(|(depth, word_len)| {
        let word = prop::collection::vec(0u32..256u32, word_len)
            .prop_map(|v| v.into_iter().map(|s| s as Symbol).collect::<Vec<_>>());
        (Just(depth), prop::collection::vec(word, depth))
    })
}

proptest! {
    #[test]
    fn interleave_deinterleave_round_trips((depth, words) in words_strategy()) {
        let il = Interleaver::new(depth).unwrap();
        let word_len = words[0].len();
        let physical = il.interleave(&words).unwrap();
        prop_assert_eq!(physical.len(), depth * word_len);
        let back = il.deinterleave(&physical, word_len).unwrap();
        prop_assert_eq!(back, words);
    }

    #[test]
    fn locate_agrees_with_the_physical_layout((depth, words) in words_strategy()) {
        let il = Interleaver::new(depth).unwrap();
        let physical = il.interleave(&words).unwrap();
        for (p, &symbol) in physical.iter().enumerate() {
            let (w, s) = il.locate(p);
            prop_assert!(w < depth);
            prop_assert_eq!(symbol, words[w][s], "physical index {}", p);
        }
    }

    #[test]
    fn bursts_up_to_depth_hit_distinct_words(
        (depth, words) in words_strategy(),
        start_raw in 0usize..1024,
    ) {
        let il = Interleaver::new(depth).unwrap();
        let total = depth * words[0].len();
        prop_assume!(total >= depth && depth > 1);
        // A contiguous physical burst of length `depth` touches every
        // word exactly once — the dispersal property that turns a burst
        // into single-symbol (correctable) faults per RS word.
        let start = start_raw % (total - depth + 1);
        let hit: Vec<usize> = (start..start + depth).map(|p| il.locate(p).0).collect();
        let mut sorted = hit.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), depth, "burst at {} reused a word: {:?}", start, hit);
    }
}

#[test]
fn deinterleave_rejects_wrong_length() {
    let il = Interleaver::new(3).unwrap();
    assert!(il.deinterleave(&[0; 7], 2).is_err());
    assert!(il.deinterleave(&[0; 6], 2).is_ok());
}
