//! Proves the steady-state allocation contract of the batched decode
//! plane with a counting global allocator: after one warm-up call, a
//! [`BatchDecoder::decode_batch`] over clean words with no declared
//! erasures performs **zero heap allocations** — the workspace buffers,
//! the outcome vector and the syndrome lanes are all reused. This is
//! the property that lets the Monte-Carlo shard loop batch millions of
//! trials without touching the allocator.

use rsmem_code::{BatchDecoder, BatchOutcome, DecodeOpts, RsCode};
use rsmem_gf::Symbol;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global, so the two tests must not
/// run concurrently (the harness runs tests on parallel threads).
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_clean_batches_allocate_nothing() {
    let _serial = SERIAL.lock().unwrap();
    // Logging/profiling are never initialised in this test binary, so
    // the decode spans reduce to their disabled fast gates (which the
    // obs crate separately proves allocation-free).
    let code = RsCode::new(18, 16, 8).unwrap();
    let mut words: Vec<Vec<Symbol>> = (0..96u32)
        .map(|i| {
            let data: Vec<Symbol> = (0..16u32)
                .map(|j| ((i * 31 + j * 7) % 256) as Symbol)
                .collect();
            code.encode(&data).unwrap()
        })
        .collect();
    let mut decoder = BatchDecoder::new();
    let mut outcomes = Vec::new();

    // Warm-up: grows the transpose/syndrome buffers, the outcome vector
    // and the global metric counters to their steady-state sizes.
    decoder
        .decode_batch(
            &code,
            &mut words,
            &[],
            &DecodeOpts::default(),
            &mut outcomes,
        )
        .unwrap();
    assert!(outcomes.iter().all(|o| *o == BatchOutcome::Clean));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        decoder
            .decode_batch(
                &code,
                &mut words,
                &[],
                &DecodeOpts::default(),
                &mut outcomes,
            )
            .unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm clean decode_batch calls must not allocate"
    );
    assert!(outcomes.iter().all(|o| *o == BatchOutcome::Clean));
}

#[test]
fn warm_batches_with_empty_erasure_sets_allocate_nothing() {
    let _serial = SERIAL.lock().unwrap();
    // The per-word erasure convention (one, possibly empty, set per
    // word) is what the simulator passes; empty sets must stay on the
    // allocation-free path too.
    let code = RsCode::new(36, 16, 8).unwrap();
    let mut words: Vec<Vec<Symbol>> = (0..32u32)
        .map(|i| {
            let data: Vec<Symbol> = (0..16u32)
                .map(|j| ((i * 13 + j * 5 + 1) % 256) as Symbol)
                .collect();
            code.encode(&data).unwrap()
        })
        .collect();
    let erasures: Vec<Vec<usize>> = vec![Vec::new(); words.len()];
    let mut decoder = BatchDecoder::new();
    let mut outcomes = Vec::new();

    decoder
        .decode_batch(
            &code,
            &mut words,
            &erasures,
            &DecodeOpts::default(),
            &mut outcomes,
        )
        .unwrap();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        decoder
            .decode_batch(
                &code,
                &mut words,
                &erasures,
                &DecodeOpts::default(),
                &mut outcomes,
            )
            .unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm decode_batch with empty erasure sets must not allocate"
    );
}
