//! Property-based and randomized cross-checks of the Reed–Solomon codec.
//!
//! The central invariants:
//! * any pattern with `er + 2·re ≤ n − k` decodes back to the original data
//!   with both back-ends;
//! * the two back-ends agree on outcome class for arbitrary corruption;
//! * erasure-only recovery agrees with Lagrange interpolation-free oracle
//!   (re-encoding comparison).

use proptest::prelude::*;
use rsmem_code::{DecodeOutcome, DecoderBackend, RsCode, Symbol};

/// Test codes spanning narrow, wide, shortened and small-field shapes.
fn codes() -> impl Strategy<Value = RsCode> {
    prop_oneof![
        Just(RsCode::new(15, 9, 4).unwrap()),
        Just(RsCode::new(15, 11, 4).unwrap()),
        Just(RsCode::new(12, 6, 4).unwrap()),
        Just(RsCode::new(18, 16, 8).unwrap()),
        Just(RsCode::new(36, 16, 8).unwrap()),
        Just(RsCode::with_first_root(31, 21, 5, 1).unwrap()),
    ]
}

#[derive(Debug, Clone)]
struct Pattern {
    data_seed: u64,
    erasures: Vec<usize>,
    errors: Vec<(usize, Symbol)>,
}

fn data_for(code: &RsCode, seed: u64) -> Vec<Symbol> {
    let size = code.field().size() as u64;
    (0..code.k())
        .map(|i| {
            let mix = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
            (mix % size) as Symbol
        })
        .collect()
}

/// A correctable pattern for the given code: er + 2·re ≤ n − k, distinct
/// positions, non-zero magnitudes.
fn correctable_pattern(code: RsCode) -> impl Strategy<Value = (RsCode, Pattern)> {
    let n = code.n();
    let budget = code.parity_symbols();
    let size = code.field().size();
    (
        any::<u64>(),
        0..=budget,
        prop::collection::vec((0..n, 1..size as Symbol), 0..=budget / 2),
        any::<u64>(),
    )
        .prop_map(move |(data_seed, er_budget, raw_errors, shuffle_seed)| {
            // Choose erasure positions deterministically from the seed,
            // disjoint from error positions, within the capability budget.
            let mut errors: Vec<(usize, Symbol)> = Vec::new();
            for (p, v) in raw_errors {
                if errors.iter().all(|&(q, _)| q != p) {
                    errors.push((p, v));
                }
            }
            let re = errors.len();
            let max_er = budget.saturating_sub(2 * re).min(er_budget);
            let mut erasures = Vec::new();
            let mut x = shuffle_seed | 1;
            while erasures.len() < max_er {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let p = (x >> 33) as usize % n;
                if !erasures.contains(&p) && errors.iter().all(|&(q, _)| q != p) {
                    erasures.push(p);
                }
            }
            (
                code.clone(),
                Pattern {
                    data_seed,
                    erasures,
                    errors,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn correctable_patterns_decode_exactly((code, pat) in codes().prop_flat_map(correctable_pattern)) {
        let data = data_for(&code, pat.data_seed);
        let clean = code.encode(&data).unwrap();
        let mut word = clean.clone();
        for &p in &pat.erasures {
            // Clobber erased symbols with an arbitrary (possibly equal) value.
            word[p] ^= (p as Symbol * 2 + 1) % code.field().size() as Symbol;
        }
        for &(p, v) in &pat.errors {
            word[p] ^= v;
        }
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            let out = code.decode_with(&word, &pat.erasures, backend).unwrap();
            prop_assert_eq!(
                out.data(),
                Some(&data[..]),
                "backend={} erasures={:?} errors={:?}",
                backend,
                &pat.erasures,
                &pat.errors
            );
        }
    }

    #[test]
    fn backends_agree_on_arbitrary_corruption(
        code in codes(),
        seed in any::<u64>(),
        flips in prop::collection::vec((0usize..64, 1u16..256), 0..8)
    ) {
        let data = data_for(&code, seed);
        let mut word = code.encode(&data).unwrap();
        for (p, v) in flips {
            let p = p % code.n();
            let v = v % code.field().size() as Symbol;
            word[p] ^= v;
        }
        let a = code.decode_with(&word, &[], DecoderBackend::Sugiyama).unwrap();
        let b = code.decode_with(&word, &[], DecoderBackend::BerlekampMassey).unwrap();
        // Outcomes must agree on success vs failure; on success the decoded
        // codewords must be identical (both solve the same key equation).
        match (&a, &b) {
            (DecodeOutcome::Failure(_), DecodeOutcome::Failure(_)) => {}
            _ => prop_assert_eq!(a.data(), b.data()),
        }
    }

    #[test]
    fn decode_never_accepts_noncodeword(
        code in codes(),
        seed in any::<u64>(),
        flips in prop::collection::vec((0usize..64, 1u16..256), 1..6)
    ) {
        let data = data_for(&code, seed);
        let mut word = code.encode(&data).unwrap();
        for (p, v) in flips {
            let p = p % code.n();
            let v = v % code.field().size() as Symbol;
            word[p] ^= v;
        }
        match code.decode(&word, &[]).unwrap() {
            DecodeOutcome::Clean { data: d } => {
                // Clean means the corruption cancelled back to a codeword;
                // then the data must round-trip through re-encode.
                let re = code.encode(&d).unwrap();
                prop_assert_eq!(re, word);
            }
            DecodeOutcome::Corrected { codeword, .. } => {
                prop_assert!(code.is_codeword(&codeword).unwrap());
            }
            DecodeOutcome::Failure(_) => {}
        }
    }

    #[test]
    fn erasure_only_recovery_matches_reencoding(
        seed in any::<u64>(),
        positions in prop::collection::btree_set(0usize..15, 0..=6)
    ) {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data = data_for(&code, seed);
        let clean = code.encode(&data).unwrap();
        let erasures: Vec<usize> = positions.into_iter().collect();
        let mut word = clean.clone();
        for &p in &erasures {
            word[p] = 0; // erase to an arbitrary fill value
        }
        let out = code.decode(&word, &erasures).unwrap();
        let got = out.data().expect("within capability");
        prop_assert_eq!(got, &data[..]);
        // The corrected codeword must equal the original encoding.
        if let DecodeOutcome::Corrected { codeword, .. } = &out {
            prop_assert_eq!(codeword, &clean);
        }
    }
}

/// Deterministic exhaustive sweep: every (single error) × (single erasure)
/// combination on the paper's RS(18,16) — the exact fault class its duplex
/// analysis cares about (`er + 2·re = 3 > 2` must fail or flag; `er ≤ 2`,
/// `re ≤ 1` alone must correct).
#[test]
fn rs18_16_exhaustive_one_error_one_erasure_is_uncorrectable() {
    let code = RsCode::new(18, 16, 8).unwrap();
    let data: Vec<Symbol> = (0..16).collect();
    let clean = code.encode(&data).unwrap();
    let mut wrong_accepted = 0u32;
    let mut total = 0u32;
    for epos in (0..18).step_by(5) {
        for rpos in 0..18 {
            if rpos == epos {
                continue;
            }
            let mut word = clean.clone();
            word[epos] ^= 0x3c;
            word[rpos] ^= 0x81;
            total += 1;
            match code.decode(&word, &[epos]).unwrap() {
                DecodeOutcome::Failure(_) => {}
                out => {
                    // er + 2·re = 3 > n−k = 2: any produced output is a
                    // mis-correction and must be a valid (wrong) codeword.
                    if out.data() == Some(&data[..]) {
                        wrong_accepted += 1; // would be a soundness bug
                    }
                }
            }
        }
    }
    assert!(total > 0);
    assert_eq!(
        wrong_accepted, 0,
        "beyond-capability pattern decoded to the original data by luck is \
         impossible: the original is at distance 3 > capability from the word"
    );
}
