//! End-to-end tests of the analysis daemon: boot on an ephemeral
//! loopback port, exercise every endpoint over real sockets, and verify
//! the caching/single-flight/shedding/shutdown behaviour the service
//! exists to provide.

use rsmem::units::{SeuRate, Time, TimeGrid};
use rsmem::{CodeParams, MemorySystem, Scrubbing};
use rsmem_service::{Server, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn boot(config: ServiceConfig) -> Server {
    Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind ephemeral server")
}

/// One request over a fresh connection; returns (status, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .expect("header/body separator");
    (status, head, payload)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    request(addr, "GET", path, "", "")
}

fn post_analyze(addr: SocketAddr, body: &str) -> (u16, String, String) {
    request(addr, "POST", "/v1/analyze", "", body)
}

fn metric(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics_text}"))
}

/// Pulls `"name":[...]` arrays of numbers out of the response JSON
/// without a JSON dependency in the test: the encoder emits arrays of
/// plain numbers with no nested brackets.
fn number_array(body: &str, name: &str) -> Vec<f64> {
    let marker = format!("\"{name}\":[");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("{name} in {body}"))
        + marker.len();
    let end = start + body[start..].find(']').expect("closing bracket");
    body[start..end]
        .split(',')
        .map(|x| x.parse().expect("number"))
        .collect()
}

#[test]
fn healthz_and_unknown_routes() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
    let (status, _, body) = get(addr, "/nope");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\""));
    let (status, _, _) = get(addr, "/v1/analyze"); // wrong method
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn analyze_matches_direct_library_call() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();
    let (status, _, body) = post_analyze(
        addr,
        r#"{"system": "duplex", "seu_per_bit_day": 1.7e-5, "scrub_period_s": 900, "points": 9}"#,
    );
    assert_eq!(status, 200, "{body}");

    let system = MemorySystem::duplex(CodeParams::rs18_16())
        .with_seu_rate(SeuRate::per_bit_day(1.7e-5))
        .with_scrubbing(Scrubbing::every_seconds(900.0));
    let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 9);
    let direct = system.ber_curve(grid.points()).expect("direct solve");

    let ber = number_array(&body, "ber");
    let fail = number_array(&body, "fail_probability");
    let times = number_array(&body, "times_hours");
    assert_eq!(ber.len(), 9);
    for i in 0..9 {
        assert!((times[i] - grid.points()[i].as_hours()).abs() < 1e-12);
        assert!(
            (ber[i] - direct.ber[i]).abs() <= 1e-12 * direct.ber[i].abs().max(1.0),
            "ber[{i}]: served {} vs direct {}",
            ber[i],
            direct.ber[i]
        );
        assert!(
            (fail[i] - direct.fail_probability[i]).abs()
                <= 1e-12 * direct.fail_probability[i].abs().max(1.0)
        );
    }
    server.shutdown();
}

#[test]
fn repeated_request_is_a_byte_identical_cache_hit() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();
    let body = r#"{"seu_per_bit_day": 3.6e-6, "points": 7}"#;

    let (status, head1, body1) = post_analyze(addr, body);
    assert_eq!(status, 200);
    assert!(head1.contains("X-Cache: miss"), "{head1}");

    // Same analysis spelled differently: key order and code spelling
    // differ, canonicalization must still find the cached entry.
    let respelled =
        r#"{"points": 7, "code": "18,16,8", "system": "simplex", "seu_per_bit_day": 0.0000036}"#;
    let (status, head2, body2) = post_analyze(addr, respelled);
    assert_eq!(status, 200);
    assert!(head2.contains("X-Cache: hit"), "{head2}");
    assert_eq!(body1, body2, "cached response must be byte-identical");

    let (_, _, metrics) = get(addr, "/metrics");
    assert_eq!(metric(&metrics, "rsmem_cache_misses_total"), 1);
    assert_eq!(metric(&metrics, "rsmem_cache_hits_total"), 1);
    assert_eq!(
        metric(
            &metrics,
            "rsmem_requests_total{endpoint=\"analyze\",status=\"200\"}"
        ),
        2
    );
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_solve_exactly_once() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();
    // A deliberately heavy config so the first solve is still in flight
    // when the other requests land on the daemon.
    let body = Arc::new(
        r#"{"system": "duplex", "seu_per_bit_day": 1.7e-5, "scrub_period_s": 900, "points": 2001}"#
            .to_owned(),
    );

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let body = Arc::clone(&body);
            std::thread::spawn(move || post_analyze(addr, &body))
        })
        .collect();
    let mut bodies = Vec::new();
    for handle in handles {
        let (status, _, response_body) = handle.join().expect("request thread");
        assert_eq!(status, 200);
        bodies.push(response_body);
    }
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "all four responses identical"
    );

    let (_, _, metrics) = get(addr, "/metrics");
    // Exactly one solve: one miss computed the result; the others were
    // deduplicated in flight (shared) or — if they arrived after
    // completion — served from the cache (hits). Either way: one solve.
    assert_eq!(metric(&metrics, "rsmem_cache_misses_total"), 1);
    assert_eq!(
        metric(&metrics, "rsmem_cache_hits_total")
            + metric(&metrics, "rsmem_cache_singleflight_shared_total"),
        3
    );
    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_structured_400s() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();
    for (payload, needle) in [
        ("{not json", "invalid JSON"),
        ("[1,2,3]", "object"),
        (r#"{"system": "triplex"}"#, "triplex"),
        (r#"{"code": "16,18,8"}"#, "code"),
        (r#"{"seu_per_bit_day": -2}"#, "rate"),
        (r#"{"unknown_knob": 1}"#, "unknown field"),
    ] {
        let (status, _, body) = post_analyze(addr, payload);
        assert_eq!(status, 400, "{payload} -> {body}");
        assert!(body.starts_with("{\"error\":"), "{body}");
        assert!(
            body.to_lowercase().contains(&needle.to_lowercase()),
            "{payload}: {body} should mention {needle}"
        );
    }
    // Invalid requests must not pollute the cache or count as misses.
    let (_, _, metrics) = get(addr, "/metrics");
    assert_eq!(metric(&metrics, "rsmem_cache_misses_total"), 0);
    assert_eq!(
        metric(
            &metrics,
            "rsmem_requests_total{endpoint=\"analyze\",status=\"400\"}"
        ),
        6
    );
    server.shutdown();
}

#[test]
fn experiment_endpoint_negotiates_json_and_csv() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();

    let (status, head, body) = get(addr, "/v1/experiments/fig7");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: application/json"));
    assert!(body.contains("\"id\":\"fig7\""));
    assert!(body.contains("\"series\""));

    // ?format=csv and Accept: text/csv must both serve the exact bytes
    // the library's own CSV renderer produces.
    let (status, head, csv_body) = get(addr, "/v1/experiments/fig7?format=csv");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: text/csv"));
    let expected = match rsmem::experiments::run(rsmem::experiments::ExperimentId::Fig7).unwrap() {
        rsmem::experiments::ExperimentOutput::Figure(fig) => rsmem::report::figure_to_csv(&fig),
        rsmem::experiments::ExperimentOutput::Table(_) => unreachable!("fig7 is a figure"),
    };
    assert_eq!(csv_body, expected);

    let (status, head, accept_body) = request(
        addr,
        "GET",
        "/v1/experiments/fig7",
        "Accept: text/csv\r\n",
        "",
    );
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: text/csv"));
    assert_eq!(accept_body, csv_body);

    // The repeated CSV fetch was a cache hit.
    assert!(head.contains("X-Cache: hit"), "{head}");

    let (status, _, table) = get(addr, "/v1/experiments/complexity");
    assert_eq!(status, 200);
    assert!(table.contains("\"rows\""));

    let (status, _, body) = get(addr, "/v1/experiments/fig99");
    assert_eq!(status, 404);
    assert!(body.contains("fig99"));

    let (status, _, _) = get(addr, "/v1/experiments/fig5?format=xml");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn backlog_overflow_sheds_with_503() {
    // One worker, zero queue slots: a connection is only accepted if the
    // worker is free. Occupy the worker with a half-sent request, then
    // any further connection must be shed immediately.
    let server = boot(ServiceConfig {
        workers: 1,
        backlog: 0,
        ..ServiceConfig::default()
    });
    let addr = server.local_addr();

    let mut holder = TcpStream::connect(addr).expect("connect holder");
    holder
        .write_all(b"POST /v1/analyze HTTP/1.1\r\n")
        .expect("partial request");
    // Let the acceptor hand the holder to the single worker.
    std::thread::sleep(Duration::from_millis(100));

    let (status, head, body) = get(addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(head.contains("Retry-After"), "{head}");
    assert!(body.contains("overloaded"));

    // Release the worker and verify the daemon recovers. With a single
    // rendezvous worker a request can still land in the instant between
    // one connection closing and the worker re-entering its queue, so
    // honour the 503's Retry-After contract instead of racing it.
    drop(holder);
    let metrics = retry_until_200(addr, "/metrics");
    assert!(metric(&metrics, "rsmem_connections_shed_total") >= 1);
    server.shutdown();
}

/// Retries a GET through transient 503 sheds (up to ~2 s).
fn retry_until_200(addr: SocketAddr, path: &str) -> String {
    for _ in 0..20 {
        let (status, _, body) = get(addr, path);
        if status == 200 {
            return body;
        }
        assert_eq!(status, 503, "only shedding is transient: {body}");
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("{path} still shedding after retries")
}

#[test]
fn shutdown_drains_inflight_requests() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();
    // A heavy request that is still solving when shutdown begins.
    let worker = std::thread::spawn(move || {
        post_analyze(
            addr,
            r#"{"system": "duplex", "seu_per_bit_day": 1.7e-5, "scrub_period_s": 900, "points": 1501}"#,
        )
    });
    // Give the request time to be accepted and start solving.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();

    // The in-flight response was written in full before the workers
    // exited — shutdown() has already joined every thread at this point.
    let (status, _, body) = worker.join().expect("request thread");
    assert_eq!(status, 200, "{body}");
    let ber = number_array(&body, "ber");
    assert_eq!(ber.len(), 1501, "response body complete");

    // And the port is actually closed now.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TCP connect can still succeed briefly on some stacks; a
            // request must at least never be answered.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            s.read_to_string(&mut buf).map(|n| n == 0).unwrap_or(true)
        }
    );
}

#[test]
fn trace_id_flows_from_header_through_solve_into_events_and_metrics() {
    use rsmem_obs::log::{self, LogConfig, LogFormat, Sink};
    use rsmem_obs::Level;

    // Capture structured events in a buffer; filter by trace ID below so
    // concurrently running tests (which mint their own IDs) cannot
    // interfere with the assertions.
    let buffer = Arc::new(std::sync::Mutex::new(Vec::new()));
    log::set_sink(Sink::Buffer(Arc::clone(&buffer)));
    log::init(Some(LogConfig {
        format: LogFormat::Json,
        level: Level::Debug,
        targets: vec!["service.".into(), "ctmc.".into()],
    }));

    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();
    let (status, head, _) = request(
        addr,
        "POST",
        "/v1/analyze",
        "X-Rsmem-Trace-Id: 00000000deadbeef\r\n",
        r#"{"seu_per_bit_day": 2.5e-6, "points": 5}"#,
    );
    assert_eq!(status, 200);
    assert!(
        head.contains("X-Rsmem-Trace-Id: 00000000deadbeef"),
        "response must echo the caller's trace ID: {head}"
    );

    // Stop logging before reading the buffer so other tests stop
    // appending to it mid-assertion.
    log::init(None);
    log::set_sink(Sink::Stderr);

    let text = String::from_utf8(buffer.lock().unwrap().clone()).expect("UTF-8 JSON lines");
    for line in text.lines() {
        rsmem_obs::json::parse(line).unwrap_or_else(|e| panic!("unparseable event {line:?}: {e}"));
    }
    let traced: Vec<&str> = text
        .lines()
        .filter(|line| line.contains("\"trace_id\":\"00000000deadbeef\""))
        .collect();
    // The request span, the cache-lookup event, the solve span, and the
    // uniformization spans the solve produced all carry the caller's ID
    // — including across the cache boundary into the CTMC solver.
    for name in ["request", "analyze_lookup", "solve", "transient_grid"] {
        assert!(
            traced
                .iter()
                .any(|line| line.contains(&format!("\"name\":\"{name}\""))),
            "no {name:?} event with the caller's trace ID in:\n{text}"
        );
    }

    // The cache-miss solve also published solver-level series that the
    // service's /metrics renders next to its HTTP series.
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metric(&metrics, "rsmem_solver_uniformization_solves_total") >= 1,
        "{metrics}"
    );
    for family in [
        "# TYPE rsmem_solver_uniformization_terms histogram",
        "# TYPE rsmem_solver_decode_total counter",
        "# TYPE rsmem_solver_mc_shards_total counter",
        "# TYPE rsmem_arbiter_decisions_total counter",
    ] {
        assert!(metrics.contains(family), "{family} missing in:\n{metrics}");
    }
    server.shutdown();
}

#[test]
fn cache_evictions_are_counted_and_bounded() {
    let server = boot(ServiceConfig {
        cache_capacity: 2,
        ..ServiceConfig::default()
    });
    let addr = server.local_addr();
    for points in [5, 6, 7, 8] {
        let (status, _, _) = post_analyze(addr, &format!("{{\"points\": {points}}}"));
        assert_eq!(status, 200);
    }
    let (_, _, metrics) = get(addr, "/metrics");
    assert_eq!(metric(&metrics, "rsmem_cache_entries"), 2);
    assert_eq!(metric(&metrics, "rsmem_cache_evictions_total"), 2);
    assert_eq!(metric(&metrics, "rsmem_cache_capacity"), 2);
    server.shutdown();
}

#[test]
fn debug_profile_exposes_call_tree_and_reset_epochs() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();

    // A cache-miss solve populates the profiler: the request span plus
    // nested solver spans (ber_curve under the HTTP request).
    let (status, _, _) = post_analyze(
        addr,
        r#"{"system": "duplex", "seu_per_bit_day": 1.7e-5, "scrub_period_s": 900, "points": 7}"#,
    );
    assert_eq!(status, 200);

    let (status, _, body) = get(addr, "/debug/profile");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"rsmem-profile/1\""), "{body}");
    assert!(body.contains("\"bounds_us\""), "{body}");
    assert!(
        body.contains("\"name\":\"request\"") && body.contains("\"target\":\"service.http\""),
        "request span missing in:\n{body}"
    );
    assert!(
        body.contains("\"name\":\"ber_curve\""),
        "solver span missing in:\n{body}"
    );

    // The same aggregation shows up in /metrics as summary series.
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("# TYPE rsmem_profile_span_us summary"),
        "{metrics}"
    );
    assert!(
        metrics.contains("rsmem_profile_span_us_count{name=\"request\",target=\"service.http\"}"),
        "{metrics}"
    );
    // The build-info gauge identifies the build under measurement.
    assert!(
        metrics.contains("# TYPE rsmem_build_info gauge"),
        "{metrics}"
    );

    // ?reset=1 snapshots and zeroes; the tree survives (same nodes,
    // fresh epoch), so a later scrape still parses and carries the
    // request node with a small count. Profiling state is process-wide
    // and other tests run concurrently, so only assert monotone-safe
    // facts: the reset response itself still holds the pre-reset data.
    let (status, _, body) = get(addr, "/debug/profile?reset=1");
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"request\""), "{body}");
    let (status, _, body) = get(addr, "/debug/profile");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"rsmem-profile/1\""), "{body}");

    // Wrong method is a 405, like the other fixed routes.
    let (status, _, _) = request(addr, "POST", "/debug/profile", "", "");
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn debug_flightrecorder_replays_request_timeline() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();

    // Any handled request writes span records into the recorder rings
    // (Server::bind enables the flight recorder for the process).
    let (status, _, _) = post_analyze(addr, r#"{"points": 4}"#);
    assert_eq!(status, 200);

    let (status, _, body) = get(addr, "/debug/flightrecorder");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"rsmem-trace/1\""), "{body}");
    assert!(body.contains("\"events\":"), "{body}");
    assert!(
        body.contains("\"target\":\"service.http\"") && body.contains("\"name\":\"request\""),
        "request span events missing in:\n{body}"
    );
    // Request events carry their trace id so the timeline groups per
    // request, matching the `trace_id` echoed in logs and headers.
    assert!(body.contains("\"trace_id\":\""), "{body}");

    // ?reset=1 mirrors /debug/profile: the response still holds the
    // pre-reset data and a later scrape starts a fresh epoch. Recorder
    // state is process-wide and other tests run concurrently, so only
    // assert monotone-safe facts.
    let (status, _, body) = get(addr, "/debug/flightrecorder?reset=1");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"rsmem-trace/1\""), "{body}");
    let (status, _, body) = get(addr, "/debug/flightrecorder");
    assert_eq!(status, 200);
    assert!(body.contains("\"epoch\":"), "{body}");

    // Wrong method is a 405, like the other fixed routes.
    let (status, _, _) = request(addr, "POST", "/debug/flightrecorder", "", "");
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn debug_flightrecorder_serves_failure_exemplars() {
    let server = boot(ServiceConfig::default());
    let addr = server.local_addr();

    // An in-process stress run stands in for decode incidents inside
    // the service host: beyond-bound lattice cases legally miscorrect,
    // so the (process-wide, bind-enabled) recorder freezes exemplars.
    let report = rsmem_stress::run(&rsmem_stress::StressConfig::with_budget(0xDA7E, 500));
    assert!(report.is_clean(), "stress run diverged: {report:?}");

    let (status, _, body) = get(addr, "/debug/flightrecorder");
    assert_eq!(status, 200);
    assert!(body.contains("\"exemplars\":"), "{body}");
    assert!(
        body.contains("\"kind\":\"miscorrection\""),
        "miscorrection exemplar missing in:\n{body}"
    );
    // The exemplar is a full repro: code params, the injected word,
    // its syndromes, both back-ends' verdicts and a pastable test.
    for field in ["\"code\":", "\"word\":", "\"syndromes\":", "\"repro\":"] {
        assert!(body.contains(field), "{field} missing in:\n{body}");
    }
    server.shutdown();
}
