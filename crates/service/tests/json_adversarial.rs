//! Adversarial tests for the vendored JSON codec.
//!
//! Grown out of the seeded fuzz probe that found the original lone-
//! surrogate and non-shortest-escape edge cases; the fixed corpus in
//! `adversarial_strings` pins those findings, and the seeded fuzz loops
//! keep sweeping the grammar with a bounded, deterministic budget.

use rsmem_service::json::{parse, Value};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

const ALPHABET: &[u8] = br#"{}[]",:\/u0123456789abcdefABCDEF.eE+-truefalsnl \uD800\uDC00"#;

#[test]
fn random_bytes_never_panic_and_accepted_docs_roundtrip() {
    let mut st = 7u64;
    let mut accepted = 0u64;
    for case in 0..30_000u64 {
        let len = (splitmix(&mut st) % 40) as usize;
        let bytes: Vec<u8> = (0..len)
            .map(|_| ALPHABET[(splitmix(&mut st) as usize) % ALPHABET.len()])
            .collect();
        let Ok(text) = String::from_utf8(bytes) else {
            continue;
        };
        let out = std::panic::catch_unwind(|| parse(&text));
        let parsed = match out {
            Ok(r) => r,
            Err(_) => panic!("parse PANICKED on input {text:?} (case {case})"),
        };
        if let Ok(v) = parsed {
            accepted += 1;
            // canonical round-trip: encode must parse back equal and be a
            // fixed point of encode(parse(.))
            let enc = v.encode();
            let back = parse(&enc).unwrap_or_else(|e| {
                panic!("canonical encoding {enc:?} of {text:?} does not re-parse: {e}")
            });
            assert_eq!(back.encode(), enc, "encode not canonical for {text:?}");
        }
    }
    eprintln!("accepted {accepted} documents");
}

/// Mutate *valid* seed documents to exercise deeper string/number paths.
#[test]
fn mutated_valid_docs_never_panic() {
    let seeds: [&str; 8] = [
        r#"{"n":18,"k":16,"m":8,"seu_per_bit_day":1.7e-5}"#,
        r#"["a\u0041\ud83d\ude00",0.1,-3,null,true]"#,
        "\"\\ud800\\udc00x\\u0000\"",
        r#"{"s":"\n\t\b\f\r\/\\\""}"#,
        "123456789012345678901234567890",
        "[1e308,-1e308,5e-324]",
        "\"\u{e9}\u{2028}\u{10FFFF}\"",
        r#"{"a":{"b":[{"c":[]}]}}"#,
    ];
    let mut st = 99u64;
    for case in 0..30_000u64 {
        let seed = seeds[(splitmix(&mut st) as usize) % seeds.len()];
        let mut bytes = seed.as_bytes().to_vec();
        for _ in 0..=(splitmix(&mut st) % 4) {
            let op = splitmix(&mut st) % 3;
            if bytes.is_empty() {
                break;
            }
            let i = (splitmix(&mut st) as usize) % bytes.len();
            match op {
                0 => bytes[i] = (splitmix(&mut st) % 128) as u8,
                1 => {
                    bytes.remove(i);
                }
                _ => bytes.insert(i, ALPHABET[(splitmix(&mut st) as usize) % ALPHABET.len()]),
            }
        }
        let Ok(text) = String::from_utf8(bytes) else {
            continue;
        };
        let out = std::panic::catch_unwind(|| parse(&text));
        let parsed = match out {
            Ok(r) => r,
            Err(_) => panic!("parse PANICKED on {text:?} (case {case})"),
        };
        if let Ok(v) = parsed {
            let enc = v.encode();
            let back =
                parse(&enc).unwrap_or_else(|e| panic!("{enc:?} from {text:?} fails re-parse: {e}"));
            assert_eq!(back.encode(), enc, "not canonical: {text:?}");
            assert_eq!(back, v, "value changed in round-trip: {text:?}");
        }
    }
}

#[test]
fn adversarial_strings() {
    // Lone surrogate halves in every syntactic position.
    for text in [
        "\"\\ud800\"",
        "\"\\udfff\"",
        "\"\\ud800x\"",
        "\"\\ud800\\n\"",
        "\"\\ud800\\u0041\"",
        "\"\\udc00\\ud800\"",
        "{\"\\ud800\":1}",
        "\"\\uD800\\uD800\"",
        "\"\\ud8\"",
        "\"\\u\"",
        "\"\\ud800\\u\"",
        "\"\\ud800\\udbff\"",
    ] {
        let out = std::panic::catch_unwind(|| parse(text));
        match out {
            Ok(r) => assert!(
                r.is_err(),
                "lone/invalid surrogate accepted: {text:?} -> {r:?}"
            ),
            Err(_) => panic!("parse PANICKED on {text:?}"),
        }
    }
    // Non-shortest escapes must round-trip canonically (decode to the char,
    // encode back shortest).
    let v = parse("\"\\u0041\\u00e9\"").unwrap();
    assert_eq!(v.encode(), "\"A\u{e9}\"");
    // NUL and control characters round-trip escaped.
    let v = parse("\"\\u0000\\u001f\"").unwrap();
    let enc = v.encode();
    assert_eq!(parse(&enc).unwrap(), v);
}

#[test]
fn encoder_side_fuzz() {
    // Every BMP char (and some astral) as a one-char string must encode to
    // parseable canonical JSON.
    let mut st = 5u64;
    for cp in (0u32..0x300).chain([0x2028, 0x2029, 0xFEFF, 0xFFFD, 0x1F600, 0x10FFFF]) {
        let Some(c) = char::from_u32(cp) else {
            continue;
        };
        let v = Value::String(format!("a{c}b"));
        let enc = v.encode();
        let back = parse(&enc).unwrap_or_else(|e| panic!("cp {cp:#x}: {enc:?} fails: {e}"));
        assert_eq!(back, v, "cp {cp:#x}");
        assert_eq!(back.encode(), enc, "cp {cp:#x} not canonical");
    }
    // Random f64 bit patterns.
    for _ in 0..50_000 {
        let bits = splitmix(&mut st);
        let x = f64::from_bits(bits);
        let v = Value::Number(x);
        let enc = v.encode();
        let back = parse(&enc).unwrap_or_else(|e| panic!("{x:?} -> {enc:?} fails: {e}"));
        if x.is_finite() {
            let y = back
                .as_f64()
                .unwrap_or_else(|| panic!("{x:?} -> {enc:?} -> non-number"));
            // canonical fixpoint
            assert_eq!(back.encode(), enc, "{x:?}");
            // round trip may normalize -0.0 to 0.0 but must otherwise be exact
            if x != 0.0 {
                assert_eq!(y.to_bits(), x.to_bits(), "{x:?} -> {enc:?} -> {y:?}");
            }
        }
    }
}
