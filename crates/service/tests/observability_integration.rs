//! End-to-end tests of the observability surface: the time-series
//! sampler behind `GET /debug/metrics/history`, the chunked
//! `GET /v1/stream/metrics` endpoint, and the SLO watchdog's full
//! breach pipeline (rule trips → counter increments → flight-recorder
//! exemplar freezes).
//!
//! These live in their own test binary (process) because they lean on
//! process-wide state — the obs global registry and the flight
//! recorder — that the main integration suite resets concurrently.

use rsmem_service::{Server, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn boot(sample_interval_ms: u64) -> Server {
    Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        sample_interval_ms,
        ..ServiceConfig::default()
    })
    .expect("bind ephemeral server")
}

/// One request over a fresh connection; returns (status, head, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!("GET {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .expect("header/body separator");
    (status, head, payload)
}

/// Reassembles a `Transfer-Encoding: chunked` body.
fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    while let Some((len_line, tail)) = rest.split_once("\r\n") {
        let len = usize::from_str_radix(len_line.trim(), 16).unwrap_or(0);
        if len == 0 || tail.len() < len {
            break;
        }
        out.push_str(&tail[..len]);
        rest = tail[len..].strip_prefix("\r\n").unwrap_or(&tail[len..]);
    }
    out
}

#[test]
fn stream_metrics_delivers_bounded_ndjson_frames() {
    let server = boot(1_000);
    let addr = server.local_addr();

    let (status, head, body) = get(addr, "/v1/stream/metrics?interval_ms=20&frames=3");
    assert_eq!(status, 200);
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(
        head.contains("Content-Type: application/x-ndjson"),
        "{head}"
    );
    assert!(head.contains("X-Rsmem-Trace-Id: "), "{head}");
    assert!(!head.contains("Content-Length"), "{head}");

    let frames: Vec<_> = dechunk(&body).lines().map(str::to_owned).collect();
    assert_eq!(frames.len(), 3, "{body}");
    let mut last_seq = 0.0;
    for line in &frames {
        let frame = rsmem_obs::json::parse(line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        assert_eq!(
            frame.get("schema").and_then(|v| v.as_str()),
            Some("rsmem-metrics/1")
        );
        assert!(frame.get("breaches").and_then(|v| v.as_array()).is_some());
        assert!(frame
            .get("scalars")
            .and_then(|s| s.get("requests"))
            .is_some());
        assert!(frame
            .get("quantiles")
            .and_then(|q| q.get("request_duration_us"))
            .and_then(|h| h.get("p99"))
            .is_some());
        let seq = frame.get("seq").and_then(|v| v.as_f64()).expect("seq");
        assert!(seq > last_seq, "frame sequence must increase: {body}");
        last_seq = seq;
    }

    // The streamed request was recorded under its own endpoint label.
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("rsmem_requests_total{endpoint=\"stream_metrics\",status=\"200\"} 1"),
        "{metrics}"
    );
    // Frames after the first carry rates derived from their predecessor.
    let last = rsmem_obs::json::parse(frames.last().unwrap()).unwrap();
    assert!(last.get("rates").and_then(|r| r.get("requests")).is_some());
    server.shutdown();
}

#[test]
fn metrics_history_accumulates_sampler_frames() {
    let server = boot(10);
    let addr = server.local_addr();
    // Let the background sampler thread take a few frames on its own.
    std::thread::sleep(Duration::from_millis(120));

    let (status, _, body) = get(addr, "/debug/metrics/history");
    assert_eq!(status, 200);
    let doc = rsmem_obs::json::parse(&body).expect("history JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("rsmem-metrics/1")
    );
    let frames = doc
        .get("frames")
        .and_then(|v| v.as_array())
        .expect("frames");
    assert!(
        frames.len() >= 2,
        "background sampler should have recorded frames: {body}"
    );
    assert!(doc.get("breaches").and_then(|v| v.as_array()).is_some());
    server.shutdown();
}

/// The acceptance path for the watchdog: a decode-failure burst trips
/// the `decode_failure_rate` SLO rule, increments
/// `rsmem_slo_breaches_total{rule="decode_failure_rate"}`, and freezes
/// a flight-recorder exemplar describing the breach.
#[test]
fn decode_failure_burst_trips_slo_rule_and_captures_exemplar() {
    let server = boot(10);
    let addr = server.local_addr();
    // Give the sampler a baseline frame or two before the burst.
    std::thread::sleep(Duration::from_millis(50));

    // Inject the burst where real decode failures land: the solver-level
    // outcome counter in the obs global registry, which the sampler's
    // `decode_failures` series sums over the code families.
    rsmem_obs::metrics::global()
        .counter(
            "rsmem_decode_outcomes_total",
            &[("family", "rs"), ("outcome", "failure")],
        )
        .add(10_000);

    // The sampler thread frames every ~10 ms and evaluates the watchdog
    // after each frame; poll until the breach shows up in /metrics.
    let mut breached = 0u64;
    for _ in 0..100 {
        let (_, _, metrics) = get(addr, "/metrics");
        breached = metrics
            .lines()
            .find(|l| l.starts_with("rsmem_slo_breaches_total{rule=\"decode_failure_rate\"}"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if breached >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(breached >= 1, "decode-failure burst never tripped the rule");

    // The breach froze a flight-recorder exemplar naming the rule.
    let (status, _, body) = get(addr, "/debug/flightrecorder");
    assert_eq!(status, 200);
    assert!(body.contains("\"kind\":\"slo-breach\""), "{body}");
    assert!(body.contains("decode_failure_rate"), "{body}");

    // And the breach was visible as an active alert in at least the
    // history document's shape (the rule may already have recovered by
    // now, so only assert the field exists).
    let (_, _, history) = get(addr, "/debug/metrics/history");
    let doc = rsmem_obs::json::parse(&history).expect("history JSON");
    assert!(doc.get("breaches").and_then(|v| v.as_array()).is_some());
    server.shutdown();
}
