//! Plain-text service metrics: request counters by endpoint/status,
//! cache counters, an in-flight gauge, and per-endpoint latency
//! histograms. Rendered in the Prometheus text exposition format so any
//! scraper (or `curl`) can read it.

use crate::cache::CacheStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Upper bounds of the latency histogram buckets, in microseconds. The
/// last implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 7] = [100, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// One endpoint's latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Histogram {
    /// Cumulative-style counts per bucket of `LATENCY_BUCKETS_US`, plus
    /// one overflow bucket (stored non-cumulative, rendered cumulative).
    buckets: [u64; LATENCY_BUCKETS_US.len() + 1],
    count: u64,
    sum_us: u64,
}

impl Histogram {
    fn observe(&mut self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }
}

/// The service's metrics registry. One instance is shared by every
/// worker; counters are atomics, the labelled maps sit behind short
/// mutexed sections.
pub struct Metrics {
    started: Instant,
    /// `(endpoint, status) -> count`.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// `endpoint -> latency histogram`.
    latency: Mutex<BTreeMap<&'static str, Histogram>>,
    inflight: AtomicI64,
    shed: AtomicU64,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: Mutex::new(BTreeMap::new()),
            latency: Mutex::new(BTreeMap::new()),
            inflight: AtomicI64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Records one completed request.
    pub fn record_request(&self, endpoint: &'static str, status: u16, elapsed: Duration) {
        *self
            .requests
            .lock()
            .expect("metrics lock")
            .entry((endpoint, status))
            .or_insert(0) += 1;
        self.latency
            .lock()
            .expect("metrics lock")
            .entry(endpoint)
            .or_default()
            .observe(elapsed);
    }

    /// Marks a request as started; the guard decrements on drop.
    pub fn inflight_guard(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { metrics: self }
    }

    /// Current number of requests being handled.
    pub fn inflight(&self) -> i64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Records a connection shed with `503` because the backlog was full.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total requests recorded for `endpoint` with `status`.
    pub fn request_count(&self, endpoint: &'static str, status: u16) -> u64 {
        self.requests
            .lock()
            .expect("metrics lock")
            .get(&(endpoint, status))
            .copied()
            .unwrap_or(0)
    }

    /// Renders the registry (plus the cache counters) as Prometheus text.
    pub fn render(&self, cache: CacheStats, cache_len: usize, cache_capacity: usize) -> String {
        let mut out = String::new();

        let _ = writeln!(out, "# TYPE rsmem_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "rsmem_uptime_seconds {}",
            self.started.elapsed().as_secs()
        );

        let _ = writeln!(out, "# TYPE rsmem_requests_total counter");
        for ((endpoint, status), count) in self.requests.lock().expect("metrics lock").iter() {
            let _ = writeln!(
                out,
                "rsmem_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}"
            );
        }

        let _ = writeln!(out, "# TYPE rsmem_requests_inflight gauge");
        let _ = writeln!(out, "rsmem_requests_inflight {}", self.inflight());

        let _ = writeln!(out, "# TYPE rsmem_connections_shed_total counter");
        let _ = writeln!(out, "rsmem_connections_shed_total {}", self.shed());

        let _ = writeln!(out, "# TYPE rsmem_cache_hits_total counter");
        let _ = writeln!(out, "rsmem_cache_hits_total {}", cache.hits);
        let _ = writeln!(out, "# TYPE rsmem_cache_misses_total counter");
        let _ = writeln!(out, "rsmem_cache_misses_total {}", cache.misses);
        let _ = writeln!(out, "# TYPE rsmem_cache_singleflight_shared_total counter");
        let _ = writeln!(
            out,
            "rsmem_cache_singleflight_shared_total {}",
            cache.shared
        );
        let _ = writeln!(out, "# TYPE rsmem_cache_evictions_total counter");
        let _ = writeln!(out, "rsmem_cache_evictions_total {}", cache.evictions);
        let _ = writeln!(out, "# TYPE rsmem_cache_entries gauge");
        let _ = writeln!(out, "rsmem_cache_entries {cache_len}");
        let _ = writeln!(out, "# TYPE rsmem_cache_capacity gauge");
        let _ = writeln!(out, "rsmem_cache_capacity {cache_capacity}");

        let _ = writeln!(out, "# TYPE rsmem_request_duration_us histogram");
        for (endpoint, histogram) in self.latency.lock().expect("metrics lock").iter() {
            let mut cumulative = 0;
            for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
                cumulative += histogram.buckets[i];
                let _ = writeln!(
                    out,
                    "rsmem_request_duration_us_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {cumulative}"
                );
            }
            cumulative += histogram.buckets[LATENCY_BUCKETS_US.len()];
            let _ = writeln!(
                out,
                "rsmem_request_duration_us_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {cumulative}"
            );
            let _ = writeln!(
                out,
                "rsmem_request_duration_us_sum{{endpoint=\"{endpoint}\"}} {}",
                histogram.sum_us
            );
            let _ = writeln!(
                out,
                "rsmem_request_duration_us_count{{endpoint=\"{endpoint}\"}} {}",
                histogram.count
            );
        }
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Decrements the in-flight gauge when dropped.
pub struct InflightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counters_accumulate_by_endpoint_and_status() {
        let m = Metrics::new();
        m.record_request("analyze", 200, Duration::from_micros(300));
        m.record_request("analyze", 200, Duration::from_micros(700));
        m.record_request("analyze", 400, Duration::from_micros(50));
        assert_eq!(m.request_count("analyze", 200), 2);
        assert_eq!(m.request_count("analyze", 400), 1);
        assert_eq!(m.request_count("experiment", 200), 0);
    }

    #[test]
    fn inflight_gauge_tracks_guards() {
        let m = Metrics::new();
        assert_eq!(m.inflight(), 0);
        {
            let _a = m.inflight_guard();
            let _b = m.inflight_guard();
            assert_eq!(m.inflight(), 2);
        }
        assert_eq!(m.inflight(), 0);
    }

    #[test]
    fn render_includes_every_family() {
        let m = Metrics::new();
        m.record_request("analyze", 200, Duration::from_micros(300));
        m.record_shed();
        let text = m.render(
            CacheStats {
                hits: 3,
                misses: 1,
                shared: 2,
                evictions: 0,
            },
            1,
            128,
        );
        assert!(text.contains("rsmem_requests_total{endpoint=\"analyze\",status=\"200\"} 1"));
        assert!(text.contains("rsmem_cache_hits_total 3"));
        assert!(text.contains("rsmem_cache_singleflight_shared_total 2"));
        assert!(text.contains("rsmem_connections_shed_total 1"));
        assert!(text.contains("rsmem_requests_inflight 0"));
        assert!(text.contains("rsmem_cache_capacity 128"));
        assert!(
            text.contains("rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"500\"} 1")
        );
        assert!(text.contains("rsmem_request_duration_us_count{endpoint=\"analyze\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let m = Metrics::new();
        m.record_request("x", 200, Duration::from_micros(50));
        m.record_request("x", 200, Duration::from_micros(400));
        m.record_request("x", 200, Duration::from_secs(10)); // overflow
        let text = m.render(CacheStats::default(), 0, 0);
        assert!(text.contains("rsmem_request_duration_us_bucket{endpoint=\"x\",le=\"100\"} 1"));
        assert!(text.contains("rsmem_request_duration_us_bucket{endpoint=\"x\",le=\"500\"} 2"));
        assert!(text.contains("rsmem_request_duration_us_bucket{endpoint=\"x\",le=\"+Inf\"} 3"));
    }
}
