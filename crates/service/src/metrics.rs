//! Plain-text service metrics: request counters by endpoint/status,
//! cache counters, an in-flight gauge, and per-endpoint latency
//! histograms. Rendered in the Prometheus text exposition format so any
//! scraper (or `curl`) can read it.
//!
//! Backed by the shared [`rsmem_obs::metrics::Registry`]. The service
//! keeps a **per-instance** registry for its HTTP families (so tests
//! can assert byte-exact renders regardless of what other code pushed
//! into the process-global registry); `/metrics` additionally appends
//! the global registry's solver-level series — see
//! `crate::render_metrics`.

use crate::cache::CacheStats;
use rsmem_obs::metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Upper bounds of the latency histogram buckets, in microseconds. The
/// last implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 7] = [100, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// The service's metrics registry. One instance is shared by every
/// worker; updates are atomic handle operations, with a short registry
/// lock only on first use of a new label combination.
pub struct Metrics {
    started: Instant,
    registry: Registry,
    uptime: Gauge,
    inflight: AtomicI64,
    inflight_gauge: Gauge,
    shed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_shared: Counter,
    cache_evictions: Counter,
    cache_entries: Gauge,
    cache_capacity: Gauge,
    /// Aggregate (label-free) handles for the time-series sampler.
    /// Standalone — not registered — so `/metrics` keeps its byte-stable
    /// shape while the sampler reads whole-service totals cheaply.
    sampled_requests: Counter,
    sampled_errors: Counter,
    sampled_latency: Histogram,
}

impl Metrics {
    /// A fresh registry. Families are declared here, in render order,
    /// so the exposition's shape is stable from the first scrape.
    pub fn new() -> Self {
        let registry = Registry::new();
        let uptime = registry.gauge("rsmem_uptime_seconds", &[]);
        registry.declare_counter("rsmem_requests_total");
        let inflight_gauge = registry.gauge("rsmem_requests_inflight", &[]);
        let shed = registry.counter("rsmem_connections_shed_total", &[]);
        let cache_hits = registry.counter("rsmem_cache_hits_total", &[]);
        let cache_misses = registry.counter("rsmem_cache_misses_total", &[]);
        let cache_shared = registry.counter("rsmem_cache_singleflight_shared_total", &[]);
        let cache_evictions = registry.counter("rsmem_cache_evictions_total", &[]);
        let cache_entries = registry.gauge("rsmem_cache_entries", &[]);
        let cache_capacity = registry.gauge("rsmem_cache_capacity", &[]);
        registry.declare_histogram("rsmem_request_duration_us");
        Metrics {
            started: Instant::now(),
            registry,
            uptime,
            inflight: AtomicI64::new(0),
            inflight_gauge,
            shed,
            cache_hits,
            cache_misses,
            cache_shared,
            cache_evictions,
            cache_entries,
            cache_capacity,
            sampled_requests: Counter::standalone(),
            sampled_errors: Counter::standalone(),
            sampled_latency: Histogram::with_bounds(&LATENCY_BUCKETS_US),
        }
    }

    /// Records one completed request.
    pub fn record_request(&self, endpoint: &'static str, status: u16, elapsed: Duration) {
        let status_text = status.to_string();
        self.registry
            .counter(
                "rsmem_requests_total",
                &[("endpoint", endpoint), ("status", &status_text)],
            )
            .inc();
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.registry
            .histogram(
                "rsmem_request_duration_us",
                &[("endpoint", endpoint)],
                &LATENCY_BUCKETS_US,
            )
            .observe(us as f64);
        self.sampled_requests.inc();
        if status >= 500 {
            self.sampled_errors.inc();
        }
        self.sampled_latency.observe(us as f64);
    }

    /// The aggregate request counter the time-series sampler tracks.
    pub fn sampled_requests(&self) -> Counter {
        self.sampled_requests.clone()
    }

    /// The aggregate 5xx counter the time-series sampler tracks.
    pub fn sampled_errors(&self) -> Counter {
        self.sampled_errors.clone()
    }

    /// The aggregate latency histogram the time-series sampler tracks
    /// (all endpoints, [`LATENCY_BUCKETS_US`] bounds).
    pub fn sampled_latency(&self) -> Histogram {
        self.sampled_latency.clone()
    }

    /// Marks a request as started; the guard decrements on drop.
    pub fn inflight_guard(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { metrics: self }
    }

    /// Current number of requests being handled.
    pub fn inflight(&self) -> i64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Records a connection shed with `503` because the backlog was full.
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    /// Connections shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Total requests recorded for `endpoint` with `status`. A
    /// read-only query: never creates the series.
    pub fn request_count(&self, endpoint: &'static str, status: u16) -> u64 {
        let status_text = status.to_string();
        self.registry
            .find_counter(
                "rsmem_requests_total",
                &[("endpoint", endpoint), ("status", &status_text)],
            )
            .map_or(0, |c| c.get())
    }

    /// Renders the registry (plus the cache counters) as Prometheus
    /// text. Gauge-style series whose truth lives elsewhere (uptime,
    /// in-flight, cache statistics) are refreshed into their registry
    /// handles just before rendering.
    pub fn render(&self, cache: CacheStats, cache_len: usize, cache_capacity: usize) -> String {
        self.refresh(cache, cache_len, cache_capacity);
        self.registry.render()
    }

    /// Like [`Metrics::render`] with OpenMetrics-style exemplar
    /// annotations on histogram bucket lines (the trace ID of the most
    /// recent max-bucket observation) — behind `/metrics?exemplars=1`
    /// so the default exposition stays byte-stable.
    pub fn render_with_exemplars(
        &self,
        cache: CacheStats,
        cache_len: usize,
        cache_capacity: usize,
    ) -> String {
        self.refresh(cache, cache_len, cache_capacity);
        self.registry.render_with_exemplars()
    }

    fn refresh(&self, cache: CacheStats, cache_len: usize, cache_capacity: usize) {
        self.uptime
            .set(i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX));
        self.inflight_gauge.set(self.inflight());
        self.cache_hits.set(cache.hits);
        self.cache_misses.set(cache.misses);
        self.cache_shared.set(cache.shared);
        self.cache_evictions.set(cache.evictions);
        self.cache_entries
            .set(i64::try_from(cache_len).unwrap_or(i64::MAX));
        self.cache_capacity
            .set(i64::try_from(cache_capacity).unwrap_or(i64::MAX));
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Decrements the in-flight gauge when dropped.
pub struct InflightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counters_accumulate_by_endpoint_and_status() {
        let m = Metrics::new();
        m.record_request("analyze", 200, Duration::from_micros(300));
        m.record_request("analyze", 200, Duration::from_micros(700));
        m.record_request("analyze", 400, Duration::from_micros(50));
        assert_eq!(m.request_count("analyze", 200), 2);
        assert_eq!(m.request_count("analyze", 400), 1);
        assert_eq!(m.request_count("experiment", 200), 0);
    }

    #[test]
    fn request_count_queries_do_not_grow_the_exposition() {
        let m = Metrics::new();
        let before = m.render(CacheStats::default(), 0, 0);
        assert_eq!(m.request_count("analyze", 200), 0);
        assert_eq!(m.render(CacheStats::default(), 0, 0), before);
    }

    #[test]
    fn inflight_gauge_tracks_guards() {
        let m = Metrics::new();
        assert_eq!(m.inflight(), 0);
        {
            let _a = m.inflight_guard();
            let _b = m.inflight_guard();
            assert_eq!(m.inflight(), 2);
        }
        assert_eq!(m.inflight(), 0);
    }

    #[test]
    fn render_includes_every_family() {
        let m = Metrics::new();
        m.record_request("analyze", 200, Duration::from_micros(300));
        m.record_shed();
        let text = m.render(
            CacheStats {
                hits: 3,
                misses: 1,
                shared: 2,
                evictions: 0,
            },
            1,
            128,
        );
        assert!(text.contains("rsmem_requests_total{endpoint=\"analyze\",status=\"200\"} 1"));
        assert!(text.contains("rsmem_cache_hits_total 3"));
        assert!(text.contains("rsmem_cache_singleflight_shared_total 2"));
        assert!(text.contains("rsmem_connections_shed_total 1"));
        assert!(text.contains("rsmem_requests_inflight 0"));
        assert!(text.contains("rsmem_cache_capacity 128"));
        assert!(
            text.contains("rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"500\"} 1")
        );
        assert!(text.contains("rsmem_request_duration_us_count{endpoint=\"analyze\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let m = Metrics::new();
        m.record_request("x", 200, Duration::from_micros(50));
        m.record_request("x", 200, Duration::from_micros(400));
        m.record_request("x", 200, Duration::from_secs(10)); // overflow
        let text = m.render(CacheStats::default(), 0, 0);
        assert!(text.contains("rsmem_request_duration_us_bucket{endpoint=\"x\",le=\"100\"} 1"));
        assert!(text.contains("rsmem_request_duration_us_bucket{endpoint=\"x\",le=\"500\"} 2"));
        assert!(text.contains("rsmem_request_duration_us_bucket{endpoint=\"x\",le=\"+Inf\"} 3"));
    }

    /// Byte-exact snapshot of the exposition the pre-registry
    /// implementation produced, so the migration onto the shared
    /// registry cannot silently reorder, rename or reformat a series
    /// existing scrape configs depend on.
    #[test]
    fn render_is_byte_stable_against_the_legacy_snapshot() {
        let m = Metrics::new();
        m.record_request("analyze", 200, Duration::from_micros(300));
        m.record_request("analyze", 404, Duration::from_micros(40));
        m.record_request("experiment", 200, Duration::from_micros(2_000));
        m.record_shed();
        let text = m.render(
            CacheStats {
                hits: 5,
                misses: 2,
                shared: 1,
                evictions: 4,
            },
            3,
            64,
        );
        let mut lines = text.lines();
        // The uptime value depends on wall time; pin the family header
        // and value prefix, then compare everything after it verbatim.
        assert_eq!(lines.next(), Some("# TYPE rsmem_uptime_seconds gauge"));
        assert!(lines.next().unwrap().starts_with("rsmem_uptime_seconds "));
        let rest: Vec<&str> = lines.collect();
        let expected = "\
# TYPE rsmem_requests_total counter
rsmem_requests_total{endpoint=\"analyze\",status=\"200\"} 1
rsmem_requests_total{endpoint=\"analyze\",status=\"404\"} 1
rsmem_requests_total{endpoint=\"experiment\",status=\"200\"} 1
# TYPE rsmem_requests_inflight gauge
rsmem_requests_inflight 0
# TYPE rsmem_connections_shed_total counter
rsmem_connections_shed_total 1
# TYPE rsmem_cache_hits_total counter
rsmem_cache_hits_total 5
# TYPE rsmem_cache_misses_total counter
rsmem_cache_misses_total 2
# TYPE rsmem_cache_singleflight_shared_total counter
rsmem_cache_singleflight_shared_total 1
# TYPE rsmem_cache_evictions_total counter
rsmem_cache_evictions_total 4
# TYPE rsmem_cache_entries gauge
rsmem_cache_entries 3
# TYPE rsmem_cache_capacity gauge
rsmem_cache_capacity 64
# TYPE rsmem_request_duration_us histogram
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"100\"} 1
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"500\"} 2
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"1000\"} 2
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"5000\"} 2
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"25000\"} 2
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"100000\"} 2
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"1000000\"} 2
rsmem_request_duration_us_bucket{endpoint=\"analyze\",le=\"+Inf\"} 2
rsmem_request_duration_us_sum{endpoint=\"analyze\"} 340
rsmem_request_duration_us_count{endpoint=\"analyze\"} 2
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"100\"} 0
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"500\"} 0
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"1000\"} 0
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"5000\"} 1
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"25000\"} 1
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"100000\"} 1
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"1000000\"} 1
rsmem_request_duration_us_bucket{endpoint=\"experiment\",le=\"+Inf\"} 1
rsmem_request_duration_us_sum{endpoint=\"experiment\"} 2000
rsmem_request_duration_us_count{endpoint=\"experiment\"} 1";
        assert_eq!(rest.join("\n"), expected);
    }

    #[test]
    fn fresh_instance_renders_all_type_lines_with_no_series_noise() {
        let m = Metrics::new();
        let text = m.render(CacheStats::default(), 0, 8);
        // Declared-but-empty families still print their TYPE line.
        assert!(text.contains("# TYPE rsmem_requests_total counter\n# TYPE"));
        assert!(text.ends_with("# TYPE rsmem_request_duration_us histogram\n"));
    }
}
