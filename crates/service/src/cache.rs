//! Bounded LRU result cache with single-flight deduplication.
//!
//! The daemon's workload is many near-duplicate expensive CTMC solves:
//! engineers sweeping a parameter space re-request the same canonical
//! configuration over and over, often concurrently. Two mechanisms
//! amortize that:
//!
//! * **LRU caching** — completed results are kept under their canonical
//!   key (the canonical JSON encoding of the validated config, see
//!   `crate::json`) up to a fixed capacity; the least-recently-used
//!   entry is evicted on overflow.
//! * **Single-flight** — when a request arrives for a key that is
//!   *currently being computed*, it does not start a second solve; it
//!   blocks on the in-flight computation and shares its result. Errors
//!   are shared with the waiters of that flight but never cached.
//!
//! Waiting is condvar-based, so shared waiters consume no CPU. If a
//! compute panics, the flight is resolved with an error for its waiters
//! (the panic still propagates to the computing caller).

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the completed-result cache.
    Hit,
    /// Computed by this caller (and cached on success).
    Miss,
    /// Shared the result of a concurrent in-flight computation.
    Shared,
}

/// Monotonic counters describing cache behaviour since startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the completed-result cache.
    pub hits: u64,
    /// Lookups that ran the computation.
    pub misses: u64,
    /// Lookups that piggybacked on an in-flight computation.
    pub shared: u64,
    /// Completed entries evicted to stay within capacity.
    pub evictions: u64,
}

type FlightResult<V> = Result<V, String>;

/// One in-flight computation; waiters block on the condvar.
struct Flight<V> {
    done: Mutex<Option<FlightResult<V>>>,
    cv: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, result: FlightResult<V>) {
        *self.done.lock().expect("flight lock") = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightResult<V> {
        let mut done = self.done.lock().expect("flight lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("flight lock");
        }
        done.clone().expect("checked above")
    }
}

/// A completed entry with its recency stamp.
struct Ready<V> {
    value: V,
    last_used: u64,
}

enum Slot<V> {
    Ready(Ready<V>),
    InFlight(Arc<Flight<V>>),
}

struct Inner<V> {
    map: HashMap<String, Slot<V>>,
    tick: u64,
}

/// The cache. `V` is the cached value (the service stores encoded
/// response bodies wrapped in `Arc`, so clones are cheap).
pub struct SingleFlightCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    shared: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> SingleFlightCache<V> {
    /// A cache holding at most `capacity` completed entries
    /// (`capacity == 0` disables caching but keeps single-flight).
    pub fn new(capacity: usize) -> Self {
        SingleFlightCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of completed entries currently cached.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("cache lock");
        inner
            .map
            .values()
            .filter(|slot| matches!(slot, Slot::Ready(_)))
            .count()
    }

    /// True when no completed entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Looks up `key`, running `compute` on a miss. Concurrent callers
    /// with the same key share one computation. Successful results are
    /// cached; errors are returned (and shared with any waiters) but not
    /// cached, so a transient failure does not poison the key.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returned, verbatim (possibly via another
    /// caller's flight).
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `compute` after resolving the flight with
    /// an error so waiters are not stranded.
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> FlightResult<V>,
    ) -> (FlightResult<V>, Outcome) {
        let flight = {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(key) {
                Some(Slot::Ready(ready)) => {
                    ready.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(ready.value.clone()), Outcome::Hit);
                }
                Some(Slot::InFlight(flight)) => {
                    let flight = Arc::clone(flight);
                    drop(inner);
                    self.shared.fetch_add(1, Ordering::Relaxed);
                    return (flight.wait(), Outcome::Shared);
                }
                None => {
                    let flight = Arc::new(Flight::new());
                    inner
                        .map
                        .insert(key.to_owned(), Slot::InFlight(Arc::clone(&flight)));
                    flight
                }
            }
        };

        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = panic::catch_unwind(AssertUnwindSafe(compute));

        let mut inner = self.inner.lock().expect("cache lock");
        inner.map.remove(key);
        match result {
            Ok(Ok(value)) => {
                if self.capacity > 0 {
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner.map.insert(
                        key.to_owned(),
                        Slot::Ready(Ready {
                            value: value.clone(),
                            last_used: tick,
                        }),
                    );
                    self.evict_over_capacity(&mut inner);
                }
                drop(inner);
                flight.resolve(Ok(value.clone()));
                (Ok(value), Outcome::Miss)
            }
            Ok(Err(message)) => {
                drop(inner);
                flight.resolve(Err(message.clone()));
                (Err(message), Outcome::Miss)
            }
            Err(panic_payload) => {
                drop(inner);
                flight.resolve(Err("internal: computation panicked".to_owned()));
                panic::resume_unwind(panic_payload);
            }
        }
    }

    /// Evicts least-recently-used completed entries until the count of
    /// completed entries is within capacity. In-flight entries are never
    /// evicted. O(entries) per eviction — capacities are small (hundreds)
    /// and evictions happen at most once per solve, which dwarfs the scan.
    fn evict_over_capacity(&self, inner: &mut Inner<V>) {
        loop {
            let ready_count = inner
                .map
                .values()
                .filter(|slot| matches!(slot, Slot::Ready(_)))
                .count();
            if ready_count <= self.capacity {
                return;
            }
            let oldest = inner
                .map
                .iter()
                .filter_map(|(key, slot)| match slot {
                    Slot::Ready(ready) => Some((ready.last_used, key.clone())),
                    Slot::InFlight(_) => None,
                })
                .min()
                .map(|(_, key)| key);
            match oldest {
                Some(key) => {
                    inner.map.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn hit_after_miss() {
        let cache: SingleFlightCache<u32> = SingleFlightCache::new(4);
        let (first, outcome) = cache.get_or_compute("k", || Ok(7));
        assert_eq!((first.unwrap(), outcome), (7, Outcome::Miss));
        let (second, outcome) = cache.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!((second.unwrap(), outcome), (7, Outcome::Hit));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                shared: 0,
                evictions: 0
            }
        );
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: SingleFlightCache<u32> = SingleFlightCache::new(4);
        let (result, _) = cache.get_or_compute("k", || Err("boom".to_owned()));
        assert_eq!(result.unwrap_err(), "boom");
        assert!(cache.is_empty());
        let (result, outcome) = cache.get_or_compute("k", || Ok(1));
        assert_eq!((result.unwrap(), outcome), (1, Outcome::Miss));
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache: SingleFlightCache<u32> = SingleFlightCache::new(2);
        cache.get_or_compute("a", || Ok(1)).0.unwrap();
        cache.get_or_compute("b", || Ok(2)).0.unwrap();
        // Touch `a` so `b` is the LRU entry.
        assert_eq!(cache.get_or_compute("a", || Ok(99)).1, Outcome::Hit);
        cache.get_or_compute("c", || Ok(3)).0.unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get_or_compute("a", || Ok(99)).1, Outcome::Hit);
        assert_eq!(cache.get_or_compute("b", || Ok(2)).1, Outcome::Miss); // evicted
    }

    #[test]
    fn zero_capacity_disables_caching_only() {
        let cache: SingleFlightCache<u32> = SingleFlightCache::new(0);
        assert_eq!(cache.get_or_compute("k", || Ok(1)).1, Outcome::Miss);
        assert_eq!(cache.get_or_compute("k", || Ok(2)).1, Outcome::Miss);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let cache: Arc<SingleFlightCache<u32>> = Arc::new(SingleFlightCache::new(4));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_compute("k", || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for the other
                    // threads to pile onto it.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    Ok(42)
                })
            }));
        }
        let outcomes: Vec<Outcome> = handles
            .into_iter()
            .map(|h| {
                let (result, outcome) = h.join().unwrap();
                assert_eq!(result.unwrap(), 42);
                outcome
            })
            .collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one solve");
        let misses = outcomes.iter().filter(|o| **o == Outcome::Miss).count();
        assert_eq!(misses, 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.shared, 3);
    }

    #[test]
    fn panicking_compute_releases_waiters() {
        let cache: Arc<SingleFlightCache<u32>> = Arc::new(SingleFlightCache::new(4));
        let barrier = Arc::new(Barrier::new(2));
        let waiter = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Give the panicking thread time to register the flight.
                std::thread::sleep(std::time::Duration::from_millis(20));
                cache.get_or_compute("k", || Ok(7))
            })
        };
        let panicker = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute("k", || {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(60));
                    panic!("solver bug")
                });
            })
        };
        assert!(panicker.join().is_err(), "panic propagates to the computer");
        // The waiter either shared the failed flight (error) or raced the
        // removal and computed fresh (Ok(7)); it must not hang or panic.
        let (result, _) = waiter.join().unwrap();
        match result {
            Ok(v) => assert_eq!(v, 7),
            Err(msg) => assert!(msg.contains("panicked")),
        }
    }
}
