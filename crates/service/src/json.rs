//! Canonical JSON codec — re-exported from [`rsmem_obs::json`].
//!
//! The codec moved to `rsmem-obs` so the structured-event pipeline and
//! the service share one implementation (identical canonical encoding,
//! identical strict parser). This module keeps the service's historical
//! `rsmem_service::json` paths working; see the obs crate for the codec
//! itself and its adversarial test-suite.

pub use rsmem_obs::json::{parse, ParseError, Value};
