//! Minimal HTTP/1.1 support: enough of the protocol for a small JSON
//! API, hand-rolled because the workspace builds offline.
//!
//! The server speaks one request per connection (`Connection: close`);
//! that keeps the worker pool trivially fair and makes load shedding a
//! per-connection decision. Request sizes are bounded (16 KiB of head,
//! 1 MiB of body) so a misbehaving client cannot balloon a worker.

use std::io::{self, BufRead, Write};

/// Maximum accepted size of the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path without the query string, e.g. `/v1/analyze`.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The peer closed the connection before sending anything — not an
    /// error worth logging (shutdown wake-ups look like this).
    Closed,
    /// A malformed or over-limit request; the message is safe to echo.
    Bad(String),
    /// An I/O failure mid-request.
    Io(String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e.to_string())
    }
}

/// Reads one request from `reader`.
///
/// # Errors
///
/// [`ReadError::Closed`] on immediate EOF, [`ReadError::Bad`] on
/// malformed input (map it to a 400), [`ReadError::Io`] otherwise.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_line(reader, &mut head_budget)?;
    if request_line.is_empty() {
        return Err(ReadError::Closed);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Bad("empty request line".into()))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Bad("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Bad("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("unsupported version {version:?}")));
    }

    let (path, query) = split_target(target);

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Bad(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ReadError::Bad(format!("bad Content-Length {len:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(ReadError::Bad(format!(
                "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        request.body = body;
    } else if request.header("transfer-encoding").is_some() {
        return Err(ReadError::Bad("chunked bodies are not supported".into()));
    }

    Ok(request)
}

/// Reads one CRLF/LF-terminated line, charging it against `budget`.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => break, // EOF
            _ => {
                if *budget == 0 {
                    return Err(ReadError::Bad("request head too large".into()));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ReadError::Bad("non-UTF-8 request head".into()))
}

/// Splits `/path?a=1&b=2` into the path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_owned(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|part| !part.is_empty())
                .map(|part| match part.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(part), String::new()),
                })
                .collect();
            (path.to_owned(), pairs)
        }
    }
}

/// Decodes `%XX` sequences and `+` (as space). Invalid sequences pass
/// through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let decoded = bytes
                    .get(i + 1..i + 3)
                    .filter(|hex| hex.iter().all(u8::is_ascii_hexdigit))
                    .and_then(|hex| {
                        u8::from_str_radix(std::str::from_utf8(hex).unwrap_or(""), 16).ok()
                    });
                match decoded {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub extra_headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A CSV response.
    pub fn csv(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/csv; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serializes status line, headers and body to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (a hung-up client, typically).
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Writes the head of a `Transfer-Encoding: chunked` streaming response
/// — the escape hatch from the one-shot [`Response`] shape used by
/// `GET /v1/stream/metrics`, where the body length is unknown up front.
/// Follow with [`write_chunk`] per payload and [`finish_chunked`] to
/// terminate.
///
/// # Errors
///
/// Propagates I/O errors (a hung-up client, typically).
pub fn write_chunked_head(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(String, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.flush()
}

/// Writes one chunk (`<hex length>\r\n<data>\r\n`) and flushes, so each
/// frame reaches the client immediately. Empty payloads are skipped —
/// a zero-length chunk would terminate the stream (that is
/// [`finish_chunked`]'s job).
///
/// # Errors
///
/// Propagates I/O errors (a hung-up client, typically).
pub fn write_chunk(writer: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(writer, "{:x}\r\n", data.len())?;
    writer.write_all(data)?;
    writer.write_all(b"\r\n")?;
    writer.flush()
}

/// Terminates a chunked response with the zero-length final chunk.
///
/// # Errors
///
/// Propagates I/O errors (a hung-up client, typically).
pub fn finish_chunked(writer: &mut impl Write) -> io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// Standard reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        415 => "Unsupported Media Type",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let r = read("GET /v1/experiments/fig7?format=csv&x=a%20b HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/experiments/fig7");
        assert_eq!(r.query_param("format"), Some("csv"));
        assert_eq!(r.query_param("x"), Some("a b"));
        assert_eq!(r.header("host"), Some("h"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = read("POST /v1/analyze HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn immediate_eof_is_closed() {
        assert_eq!(read("").unwrap_err(), ReadError::Closed);
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST /v1/analyze HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(read(&raw).unwrap_err(), ReadError::Bad(_)));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "v".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(read(&raw).unwrap_err(), ReadError::Bad(_)));
    }

    #[test]
    fn malformed_requests_are_bad() {
        assert!(matches!(
            read("GARBAGE\r\n\r\n").unwrap_err(),
            ReadError::Bad(_)
        ));
        assert!(matches!(
            read("GET / SPDY/3\r\n\r\n").unwrap_err(),
            ReadError::Bad(_)
        ));
        assert!(matches!(
            read("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n").unwrap_err(),
            ReadError::Bad(_)
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            ReadError::Bad(_)
        ));
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("X-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn chunked_stream_round_trips() {
        let mut out = Vec::new();
        write_chunked_head(
            &mut out,
            200,
            "application/x-ndjson",
            &[("X-Rsmem-Trace-Id".into(), "00ab".into())],
        )
        .unwrap();
        write_chunk(&mut out, b"{\"seq\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"{\"seq\":2}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("X-Rsmem-Trace-Id: 00ab\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.contains("\r\n\r\na\r\n{\"seq\":1}\n\r\n"));
        assert!(text.ends_with("a\r\n{\"seq\":2}\n\r\n0\r\n\r\n"));
    }

    #[test]
    fn percent_decoding_handles_edge_cases() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("a%2Cb"), "a,b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }
}
