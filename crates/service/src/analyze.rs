//! The `/v1/analyze` request schema: parsing, validation,
//! canonicalization and solving.
//!
//! A request describes one memory system and a mission-time grid. Two
//! requests that mean the same analysis must produce the same **canonical
//! config** — defaults filled in, units normalized, negative zeros
//! scrubbed — because the canonical config's JSON encoding is the cache
//! key. Validation rides on the model crates' own hooks
//! ([`CodeParams::new`], [`FaultRates::canonicalized`],
//! [`Scrubbing::canonicalized`]), so the service cannot accept a config
//! the solver would reject.

use crate::json::Value;
use rsmem::units::{ErasureRate, SeuRate, Time, TimeGrid};
use rsmem::{CodeFamily, CodeParams, FaultRates, MemorySystem, Scrubbing};

/// Maximum number of grid points a single request may ask for.
pub const MAX_POINTS: usize = 10_001;

/// Default mission horizon when the request gives none.
pub const DEFAULT_HORIZON_HOURS: f64 = 48.0;

/// Default number of grid points.
pub const DEFAULT_POINTS: usize = 25;

/// A validated, canonical analyze request.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// `true` for the duplex arrangement.
    pub duplex: bool,
    /// The RS code.
    pub code: CodeParams,
    /// Canonicalized fault rates.
    pub rates: FaultRates,
    /// Canonicalized scrubbing policy.
    pub scrub: Scrubbing,
    /// Mission horizon in hours.
    pub horizon_hours: f64,
    /// Number of grid points (≥ 2).
    pub points: usize,
}

/// The fields `from_json` accepts; anything else is a hard 400 so a
/// typo'd field name cannot silently fall back to a default (which would
/// also split the cache).
const KNOWN_FIELDS: [&str; 9] = [
    "system",
    "code",
    "family",
    "seu_per_bit_day",
    "erasure_per_symbol_day",
    "scrub_period_s",
    "horizon_hours",
    "horizon_months",
    "points",
];

impl AnalyzeRequest {
    /// Parses and validates a request body.
    ///
    /// Accepted shape (all fields optional except `code` forms must be
    /// well-formed when present):
    ///
    /// ```json
    /// {
    ///   "system": "simplex" | "duplex",
    ///   "code": "18,16,8" | [18, 16, 8] | {"n": 18, "k": 16, "m": 8},
    ///   "family": "rs" | "rm" | "irs",   // optional; defaults to "rs"
    ///   "seu_per_bit_day": 1.7e-5,
    ///   "erasure_per_symbol_day": 0,
    ///   "scrub_period_s": 900,
    ///   "horizon_hours": 48,      // or "horizon_months": 24 (exclusive)
    ///   "points": 25
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first problem found.
    pub fn from_json(body: &Value) -> Result<AnalyzeRequest, String> {
        let object = body
            .as_object()
            .ok_or("request body must be a JSON object")?;
        for key in object.keys() {
            if !KNOWN_FIELDS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field {key:?} (known fields: {})",
                    KNOWN_FIELDS.join(", ")
                ));
            }
        }

        let duplex = match body.get("system").map(|v| v.as_str()) {
            None => false,
            Some(Some("simplex")) => false,
            Some(Some("duplex")) => true,
            Some(Some(other)) => {
                return Err(format!(
                    "field \"system\": expected \"simplex\" or \"duplex\", got {other:?}"
                ))
            }
            Some(None) => return Err("field \"system\": expected a string".into()),
        };

        let code = parse_code(body.get("code"))?;
        // The `family` field is a validated cross-check: the code spec
        // itself selects the family (prefixed string forms like "rm:5"
        // or "irs:18,16,8,2"; plain forms stay RS), and a `family`
        // member that disagrees is a hard 400 rather than a silent
        // reinterpretation of the geometry.
        if let Some(v) = body.get("family") {
            let family: CodeFamily = v
                .as_str()
                .ok_or("field \"family\": expected a string")?
                .parse()
                .map_err(|e| format!("field \"family\": {e}"))?;
            if family != code.family() {
                return Err(format!(
                    "field \"family\": \"{family}\" does not match the code spec ({code}); \
                     select a family with a prefixed code string such as \"rm:5\" or \
                     \"irs:18,16,8,2\""
                ));
            }
        }

        let seu = number_field(body, "seu_per_bit_day")?.unwrap_or(0.0);
        let erasure = number_field(body, "erasure_per_symbol_day")?.unwrap_or(0.0);
        let rates = FaultRates {
            seu: SeuRate::per_bit_day(seu),
            erasure: ErasureRate::per_symbol_day(erasure),
        }
        .canonicalized()
        .map_err(|e| e.to_string())?;

        let scrub = match body.get("scrub_period_s") {
            None | Some(Value::Null) => Scrubbing::None,
            Some(v) => {
                let seconds = v
                    .as_f64()
                    .ok_or("field \"scrub_period_s\": expected a number or null")?;
                Scrubbing::every_seconds(seconds)
                    .canonicalized()
                    .map_err(|e| e.to_string())?
            }
        };

        let horizon_hours = match (
            number_field(body, "horizon_hours")?,
            number_field(body, "horizon_months")?,
        ) {
            (Some(_), Some(_)) => {
                return Err("give either \"horizon_hours\" or \"horizon_months\", not both".into())
            }
            (Some(hours), None) => hours,
            (None, Some(months)) => Time::from_months(months).as_hours(),
            (None, None) => DEFAULT_HORIZON_HOURS,
        };
        if !horizon_hours.is_finite() || horizon_hours <= 0.0 {
            return Err("the mission horizon must be positive and finite".into());
        }

        let points = match body.get("points") {
            None => DEFAULT_POINTS,
            Some(v) => {
                let x = v.as_f64().ok_or("field \"points\": expected an integer")?;
                if x.fract() != 0.0 || !(2.0..=MAX_POINTS as f64).contains(&x) {
                    return Err(format!(
                        "field \"points\": expected an integer in 2..={MAX_POINTS}"
                    ));
                }
                x as usize
            }
        };

        Ok(AnalyzeRequest {
            duplex,
            code,
            rates,
            scrub,
            horizon_hours,
            points,
        })
    }

    /// The canonical config object — defaults filled, keys sorted by the
    /// JSON encoder. Its [`Value::encode`] string is the cache key.
    pub fn canonical_config(&self) -> Value {
        // `family` (and the interleave `depth` inside `code`) are
        // emitted only for non-RS families, so every pre-existing RS
        // cache key stays byte-identical.
        let mut code_members = vec![
            ("n", Value::Number(self.code.n() as f64)),
            ("k", Value::Number(self.code.k() as f64)),
            ("m", Value::Number(f64::from(self.code.m()))),
        ];
        if self.code.family() == CodeFamily::Irs {
            code_members.push(("depth", Value::Number(self.code.depth() as f64)));
        }
        let mut fields = vec![
            (
                "system",
                Value::String(if self.duplex { "duplex" } else { "simplex" }.into()),
            ),
            ("code", Value::object(code_members)),
            (
                "seu_per_bit_day",
                Value::Number(self.rates.seu.as_per_bit_day()),
            ),
            (
                "erasure_per_symbol_day",
                Value::Number(self.rates.erasure.as_per_symbol_day()),
            ),
            (
                "scrub_period_s",
                match self.scrub {
                    Scrubbing::None => Value::Null,
                    Scrubbing::Periodic { period } => Value::Number(period.as_seconds()),
                },
            ),
            ("horizon_hours", Value::Number(self.horizon_hours)),
            ("points", Value::Number(self.points as f64)),
        ];
        if self.code.family() != CodeFamily::Rs {
            fields.push(("family", Value::String(self.code.family().to_string())));
        }
        Value::object(fields)
    }

    /// The cache key: the canonical config, encoded.
    pub fn cache_key(&self) -> String {
        self.canonical_config().encode()
    }

    /// A short hex fingerprint of the cache key (FNV-1a 64), echoed to
    /// clients as `config_id`.
    pub fn config_id(&self) -> String {
        format!("{:016x}", fnv1a(self.cache_key().as_bytes()))
    }

    /// The configured [`MemorySystem`].
    pub fn system(&self) -> MemorySystem {
        let base = if self.duplex {
            MemorySystem::duplex(self.code)
        } else {
            MemorySystem::simplex(self.code)
        };
        base.with_rates(self.rates).with_scrubbing(self.scrub)
    }

    /// Solves the request and encodes the response body.
    ///
    /// # Errors
    ///
    /// A solver error message (configuration errors were already caught
    /// by `from_json`).
    pub fn solve(&self) -> Result<Value, String> {
        let grid = TimeGrid::linspace(
            Time::zero(),
            Time::from_hours(self.horizon_hours),
            self.points,
        );
        let curve = self
            .system()
            .ber_curve(grid.points())
            .map_err(|e| e.to_string())?;
        let times_hours: Vec<f64> = grid.points().iter().map(|t| t.as_hours()).collect();
        Ok(Value::object(vec![
            ("config", self.canonical_config()),
            ("config_id", Value::String(self.config_id())),
            ("times_hours", Value::numbers(&times_hours)),
            ("fail_probability", Value::numbers(&curve.fail_probability)),
            ("ber", Value::numbers(&curve.ber)),
        ]))
    }
}

fn number_field(body: &Value, name: &str) -> Result<Option<f64>, String> {
    match body.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field {name:?}: expected a number")),
    }
}

/// Parses the three accepted `code` forms into validated [`CodeParams`].
fn parse_code(value: Option<&Value>) -> Result<CodeParams, String> {
    let err = |e: rsmem::ModelError| format!("field \"code\": {e}");
    match value {
        None => Ok(CodeParams::rs18_16()),
        Some(Value::String(s)) => s.parse().map_err(err),
        Some(Value::Array(items)) => {
            if !(2..=3).contains(&items.len()) {
                return Err("field \"code\": expected [n, k] or [n, k, m]".into());
            }
            let n = int_item(items.first(), "n")?;
            let k = int_item(items.get(1), "k")?;
            let m = match items.get(2) {
                None => 8,
                Some(_) => {
                    u32::try_from(int_item(items.get(2), "m")?).expect("int_item bounds the value")
                }
            };
            CodeParams::new(n, k, m).map_err(err)
        }
        Some(obj @ Value::Object(_)) => {
            for key in obj.as_object().expect("matched object").keys() {
                if !["n", "k", "m"].contains(&key.as_str()) {
                    return Err(format!("field \"code\": unknown member {key:?}"));
                }
            }
            let n = int_item(obj.get("n"), "n")?;
            let k = int_item(obj.get("k"), "k")?;
            let m = match obj.get("m") {
                None => 8,
                Some(_) => {
                    u32::try_from(int_item(obj.get("m"), "m")?).expect("int_item bounds the value")
                }
            };
            CodeParams::new(n, k, m).map_err(err)
        }
        Some(_) => Err("field \"code\": expected a string, array or object".into()),
    }
}

fn int_item(value: Option<&Value>, name: &str) -> Result<usize, String> {
    let x = value
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("field \"code\": member {name:?} must be an integer"))?;
    if x.fract() != 0.0 || !(0.0..=65_536.0).contains(&x) {
        return Err(format!(
            "field \"code\": member {name:?} must be an integer in 0..=65536"
        ));
    }
    Ok(x as usize)
}

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn request(body: &str) -> Result<AnalyzeRequest, String> {
        AnalyzeRequest::from_json(&json::parse(body).map_err(|e| e.to_string())?)
    }

    #[test]
    fn defaults_fill_an_empty_request() {
        let r = request("{}").unwrap();
        assert!(!r.duplex);
        assert_eq!(r.code, CodeParams::rs18_16());
        assert_eq!(r.horizon_hours, DEFAULT_HORIZON_HOURS);
        assert_eq!(r.points, DEFAULT_POINTS);
        assert_eq!(r.scrub, Scrubbing::None);
    }

    #[test]
    fn all_code_forms_agree() {
        let by_string = request(r#"{"code": "36,16,8"}"#).unwrap();
        let by_array = request(r#"{"code": [36, 16, 8]}"#).unwrap();
        let by_object = request(r#"{"code": {"n": 36, "k": 16, "m": 8}}"#).unwrap();
        let default_m = request(r#"{"code": [36, 16]}"#).unwrap();
        assert_eq!(by_string, by_array);
        assert_eq!(by_string, by_object);
        assert_eq!(by_string, default_m);
        assert_eq!(by_string.code, CodeParams::rs36_16());
    }

    #[test]
    fn equivalent_requests_share_a_cache_key() {
        // Key order, code spelling, and horizon unit differ; the analysis
        // is the same.
        let a = request(
            r#"{"points": 25, "system": "duplex", "code": [18, 16, 8], "seu_per_bit_day": 1.7e-5, "horizon_hours": 48}"#,
        )
        .unwrap();
        let b = request(
            r#"{"code": "18,16,8", "system": "duplex", "seu_per_bit_day": 0.000017, "horizon_hours": 48.0, "points": 25}"#,
        )
        .unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.config_id(), b.config_id());
        // A different config must not collide at the key level.
        let c = request(r#"{"system": "simplex", "seu_per_bit_day": 1.7e-5}"#).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn canonical_config_encodes_deterministically() {
        let r = request(r#"{"scrub_period_s": 900, "system": "duplex"}"#).unwrap();
        let encoded = r.cache_key();
        assert!(encoded.contains("\"scrub_period_s\":900"));
        assert!(encoded.contains("\"system\":\"duplex\""));
        // Keys are sorted by the canonical encoder.
        let code_pos = encoded.find("\"code\"").unwrap();
        let system_pos = encoded.find("\"system\"").unwrap();
        assert!(code_pos < system_pos);
    }

    #[test]
    fn family_field_defaults_to_rs_and_leaves_cache_keys_unchanged() {
        // The golden property for cache compatibility: an explicit
        // "family": "rs" and an absent family must produce byte-identical
        // keys, and neither mentions the field at all.
        let bare = request(r#"{"code": "18,16,8"}"#).unwrap();
        let explicit = request(r#"{"family": "rs", "code": [18, 16, 8]}"#).unwrap();
        assert_eq!(bare.cache_key(), explicit.cache_key());
        assert!(!bare.cache_key().contains("family"));
        assert!(!bare.cache_key().contains("depth"));

        // Non-RS families key on the family (and depth for interleaves).
        let rm = request(r#"{"family": "rm", "code": "rm:5"}"#).unwrap();
        assert_eq!(rm.code, CodeParams::rm1(5).unwrap());
        assert!(rm.cache_key().contains("\"family\":\"rm\""));
        let irs = request(r#"{"code": "irs:18,16,8,2"}"#).unwrap();
        assert!(irs.cache_key().contains("\"family\":\"irs\""));
        assert!(irs.cache_key().contains("\"depth\":2"));
        assert_ne!(rm.cache_key(), irs.cache_key());

        // A family that contradicts the code spec is a hard 400.
        assert!(request(r#"{"family": "rm", "code": "18,16,8"}"#)
            .unwrap_err()
            .contains("does not match"));
        assert!(request(r#"{"family": "triplex"}"#).is_err());
        assert!(request(r#"{"family": 3}"#).is_err());
    }

    #[test]
    fn non_rs_families_solve() {
        for code in ["rm:4", "irs:15,9,4,2"] {
            let r = request(&format!(
                r#"{{"code": "{code}", "seu_per_bit_day": 1e-4, "points": 3}}"#
            ))
            .unwrap();
            let response = r.solve().unwrap_or_else(|e| panic!("{code}: {e}"));
            assert_eq!(
                response.get("ber").unwrap().as_array().unwrap().len(),
                3,
                "{code}"
            );
        }
    }

    #[test]
    fn months_horizon_converts_to_hours() {
        let r = request(r#"{"horizon_months": 24}"#).unwrap();
        assert!((r.horizon_hours - Time::from_months(24.0).as_hours()).abs() < 1e-9);
        assert!(request(r#"{"horizon_months": 24, "horizon_hours": 48}"#).is_err());
    }

    #[test]
    fn invalid_requests_are_rejected_with_messages() {
        for (body, needle) in [
            (r#"[1, 2]"#, "object"),
            (r#"{"system": "triplex"}"#, "triplex"),
            (r#"{"code": "16,18,8"}"#, "code"),
            (r#"{"code": [18]}"#, "code"),
            (r#"{"code": {"n": 18, "k": 16, "q": 1}}"#, "unknown member"),
            (r#"{"seu_per_bit_day": -1}"#, "rate"),
            (r#"{"seu_per_bit_day": "fast"}"#, "number"),
            (r#"{"scrub_period_s": -900}"#, "scrub"),
            (r#"{"horizon_hours": 0}"#, "horizon"),
            (r#"{"points": 1}"#, "points"),
            (r#"{"points": 2.5}"#, "points"),
            (r#"{"points": 1000000}"#, "points"),
            (r#"{"tsc": 900}"#, "unknown field"),
        ] {
            let err = request(body).unwrap_err();
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "{body} -> {err}"
            );
        }
    }

    #[test]
    fn solve_matches_direct_library_call() {
        let r = request(
            r#"{"system": "duplex", "seu_per_bit_day": 1.7e-5, "scrub_period_s": 900, "points": 5}"#,
        )
        .unwrap();
        let response = r.solve().unwrap();
        let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 5);
        let direct = r.system().ber_curve(grid.points()).unwrap();
        let ber = response.get("ber").unwrap().as_array().unwrap();
        assert_eq!(ber.len(), 5);
        for (value, expected) in ber.iter().zip(&direct.ber) {
            assert_eq!(value.as_f64().unwrap().to_bits(), expected.to_bits());
        }
    }
}
