//! # rsmem-service — the analysis daemon
//!
//! A long-running HTTP service over the `rsmem` toolkit, built entirely
//! on `std` (the workspace builds offline): hand-rolled HTTP/1.1
//! ([`http`]), a small canonical JSON codec ([`json`]), a bounded LRU
//! result cache with single-flight deduplication ([`cache`]), and a
//! plain-text metrics registry ([`metrics`]).
//!
//! ## Endpoints
//!
//! | route | behaviour |
//! |---|---|
//! | `POST /v1/analyze` | JSON config → BER/unreliability curves (cached, deduplicated) |
//! | `GET /v1/experiments/{id}` | a regenerated paper figure/table, JSON or CSV (`?format=` / `Accept`) |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | Prometheus-style counters, gauges, histograms (`?exemplars=1` annotates histogram buckets with trace IDs) |
//! | `GET /v1/stream/metrics` | newline-delimited `rsmem-metrics/1` frames, chunked transfer encoding (`?interval_ms=`, `?frames=`) |
//! | `GET /debug/metrics/history` | the time-series sampler's ring as one `rsmem-metrics/1` document |
//! | `GET /debug/flightrecorder` | flight-recorder timeline + failure exemplars (`?reset=1` starts a new epoch) |
//!
//! A background sampler thread snapshots the service's aggregate
//! series once per `sample_interval_ms` into a fixed ring
//! ([`rsmem_obs::timeseries`]) and evaluates the default SLO rules
//! ([`rsmem_obs::watchdog`]) after each frame; breaches increment
//! `rsmem_slo_breaches_total{rule}` and freeze flight-recorder
//! exemplars.
//!
//! ## Thread model
//!
//! One acceptor thread plus a fixed pool of worker threads connected by
//! a bounded channel. When the channel is full the acceptor answers
//! `503` immediately instead of queueing unboundedly — the service sheds
//! load rather than building invisible latency. [`Server::shutdown`]
//! stops the acceptor, lets workers drain queued and in-flight requests,
//! and joins every thread before returning.
//!
//! ```no_run
//! use rsmem_service::{Server, ServiceConfig};
//!
//! let server = Server::bind(ServiceConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..Default::default()
//! })?;
//! println!("listening on {}", server.local_addr());
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;

use analyze::AnalyzeRequest;
use cache::{Outcome, SingleFlightCache};
use http::{ReadError, Request, Response};
use json::Value;
use metrics::Metrics;
use rsmem::experiments::{run_with, ExperimentId, ExperimentOutput, Figure};
use rsmem::{report, Parallelism};
use rsmem_obs::log::{format_trace_id, next_trace_id, parse_trace_id, trace_scope};
use rsmem_obs::timeseries::{track_solver_defaults, Sampler, DEFAULT_CAPACITY};
use rsmem_obs::watchdog::{RuleKind, SloRule, Watchdog};
use rsmem_obs::Level;
use std::io::{BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Configuration of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7373` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Completed-result cache capacity (entries).
    pub cache_capacity: usize,
    /// Accepted connections that may wait for a worker before the
    /// acceptor starts shedding with `503`.
    pub backlog: usize,
    /// Interval of the background time-series sampler, in milliseconds
    /// (clamped to ≥ 10).
    pub sample_interval_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7373".into(),
            workers: 0,
            cache_capacity: 128,
            backlog: 64,
            sample_interval_ms: 1_000,
        }
    }
}

/// Shared state every worker sees.
struct Ctx {
    cache: Arc<SingleFlightCache<Arc<Vec<u8>>>>,
    metrics: Metrics,
    sampler: Sampler,
    watchdog: Watchdog,
    /// Shared with the acceptor so long-lived streaming responses can
    /// notice shutdown and terminate their stream cleanly.
    shutting_down: Arc<AtomicBool>,
}

/// A running service; dropping it does **not** stop the threads — call
/// [`Server::shutdown`] (or [`Server::run`] to block until another actor
/// shuts the process down).
pub struct Server {
    local_addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    sampler_thread: JoinHandle<()>,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the listener and spawns the acceptor + worker pool.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the address.
    pub fn bind(config: ServiceConfig) -> std::io::Result<Server> {
        // Solver-level series (uniformization, decode, Monte-Carlo,
        // arbiter) live in the obs global registry; register them up
        // front so `/metrics` exposes every family from the first
        // scrape, not only after the first cache miss.
        rsmem::register_solver_metrics();
        // The daemon keeps the hierarchical profiler on: span
        // aggregation is a mutex-guarded counter update per span, and
        // it powers `GET /debug/profile` + the summary series in
        // `/metrics` without any restart-with-a-flag dance.
        rsmem_obs::profile::set_enabled(true);
        // Likewise the flight recorder: fixed-capacity per-thread rings
        // and an O(1) reservoir, so a service incident can always be
        // reconstructed from `GET /debug/flightrecorder`.
        rsmem_obs::recorder::set_enabled(true);
        install_panic_forensics();
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let worker_count = if config.workers == 0 {
            thread::available_parallelism().map_or(2, usize::from)
        } else {
            config.workers
        };

        let shutting_down = Arc::new(AtomicBool::new(false));
        let cache = Arc::new(SingleFlightCache::new(config.cache_capacity));
        let metrics = Metrics::new();
        let sampler = build_sampler(&config, &metrics, &cache);
        let ctx = Arc::new(Ctx {
            cache,
            metrics,
            sampler,
            watchdog: Watchdog::new(default_slo_rules()),
            shutting_down: Arc::clone(&shutting_down),
        });

        // Backlog of 0 means rendezvous: a connection is only accepted
        // into the pool if a worker is free right now.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.backlog);
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..worker_count.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&ctx);
                thread::Builder::new()
                    .name(format!("rsmem-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &ctx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shutting_down = Arc::clone(&shutting_down);
            let ctx = Arc::clone(&ctx);
            thread::Builder::new()
                .name("rsmem-acceptor".into())
                .spawn(move || accept_loop(&listener, &tx, &shutting_down, &ctx))
                .expect("spawn acceptor")
        };

        let sampler_thread = {
            let ctx = Arc::clone(&ctx);
            thread::Builder::new()
                .name("rsmem-sampler".into())
                .spawn(move || sampler_loop(&ctx))
                .expect("spawn sampler")
        };

        Ok(Server {
            local_addr,
            shutting_down,
            acceptor,
            workers,
            sampler_thread,
            ctx,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests by `(endpoint, status)` — exposed for tests and the
    /// in-process client example.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.ctx)
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join every thread. Responses for requests that were
    /// already accepted are written in full.
    pub fn shutdown(self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking `accept`.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.acceptor.join();
        // The acceptor dropped the sender; workers drain the channel and
        // exit on the disconnect.
        for worker in self.workers {
            let _ = worker.join();
        }
        // The sampler thread polls the shutdown flag between samples.
        let _ = self.sampler_thread.join();
    }

    /// Blocks until the acceptor stops (i.e. forever, for a daemon that
    /// is terminated by signal), then drains workers.
    pub fn run(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        self.shutting_down.store(true, Ordering::SeqCst);
        let _ = self.sampler_thread.join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    shutting_down: &AtomicBool,
    ctx: &Ctx,
) {
    for stream in listener.incoming() {
        if shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                ctx.metrics.record_shed();
                shed(stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` here disconnects the workers once the queue drains.
}

/// Builds the service's time-series sampler: the aggregate HTTP series
/// (request/error counters, whole-service latency histogram), cache
/// hit/miss readings, and the solver-level defaults (decode failures,
/// MC silent corruptions/trials, arbiter mismatches). Enabled from the
/// start — one frame per `sample_interval_ms` is a handful of atomic
/// loads.
fn build_sampler(
    config: &ServiceConfig,
    metrics: &Metrics,
    cache: &Arc<SingleFlightCache<Arc<Vec<u8>>>>,
) -> Sampler {
    let sampler = Sampler::new(
        DEFAULT_CAPACITY,
        Duration::from_millis(config.sample_interval_ms.max(10)),
    );
    sampler.track_counter("requests", metrics.sampled_requests());
    sampler.track_counter("errors_5xx", metrics.sampled_errors());
    sampler.track_histogram("request_duration_us", metrics.sampled_latency());
    let hits = Arc::clone(cache);
    sampler.track_fn("cache_hits", move || hits.stats().hits as f64);
    let misses = Arc::clone(cache);
    sampler.track_fn("cache_misses", move || misses.stats().misses as f64);
    track_solver_defaults(&sampler);
    sampler.set_enabled(true);
    sampler
}

/// The service's default SLO rules — evaluated by the sampler thread,
/// counted in `rsmem_slo_breaches_total{rule}`.
fn default_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "latency_p99",
            kind: RuleKind::QuantileAbove {
                series: "request_duration_us",
                q: 0.99,
            },
            window: 5,
            threshold: 100_000.0, // 100 ms, in µs
        },
        SloRule {
            name: "error_rate",
            kind: RuleKind::RateAbove {
                series: "errors_5xx",
            },
            window: 5,
            threshold: 1.0, // 5xx responses per second
        },
        SloRule {
            name: "cache_hit_ratio",
            kind: RuleKind::HitRatioBelow {
                hits: "cache_hits",
                misses: "cache_misses",
            },
            window: 10,
            threshold: 0.1,
        },
        SloRule {
            name: "decode_failure_rate",
            kind: RuleKind::RateAbove {
                series: "decode_failures",
            },
            window: 5,
            threshold: 5.0,
        },
        SloRule {
            name: "mc_silent_rate",
            kind: RuleKind::RateAbove {
                series: "mc_silent",
            },
            window: 5,
            threshold: 0.5,
        },
    ]
}

/// The background sampling thread: one registry snapshot per interval,
/// SLO evaluation after each new frame, shutdown checked at ≤ 250 ms
/// granularity so `Server::shutdown` never waits a full interval.
fn sampler_loop(ctx: &Ctx) {
    loop {
        if ctx.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        if ctx.sampler.maybe_sample() {
            ctx.watchdog.evaluate(&ctx.sampler);
        }
        let pause = (ctx.sampler.interval() / 4).min(Duration::from_millis(250));
        thread::sleep(pause.max(Duration::from_millis(1)));
    }
}

/// Answers `503 Service Unavailable` on the acceptor thread — cheap
/// enough not to stall accepting, and honest about overload.
fn shed(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut stream = stream;
    let body = error_body("overloaded: request backlog is full, retry later");
    let _ = Response::json(503, body)
        .with_header("Retry-After", "1")
        .write_to(&mut stream);
    // Closing with unread request bytes in the socket buffer makes the
    // kernel send RST, which can discard the queued 503 before the
    // client reads it. Signal end-of-response, then drain what the
    // client already sent so the close is graceful.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, ctx: &Ctx) {
    loop {
        let stream = match rx.lock().expect("worker queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // acceptor gone and queue drained
        };
        handle_connection(stream, ctx);
    }
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _inflight = ctx.metrics.inflight_guard();
    let mut reader = BufReader::new(stream);

    let started = Instant::now();
    let (endpoint, response) = match http::read_request(&mut reader) {
        Ok(request) => {
            // A client-supplied `X-Rsmem-Trace-Id` stitches the caller's
            // trace to every span/event this request produces (through
            // the cache, into the solvers); otherwise mint a fresh ID.
            let trace = request
                .header("x-rsmem-trace-id")
                .and_then(parse_trace_id)
                .unwrap_or_else(next_trace_id);
            let _trace = trace_scope(trace);
            if request.method == "GET" && request.path == "/v1/stream/metrics" {
                // Streaming responses bypass the one-shot Response shape:
                // the handler owns the socket and writes chunked frames
                // until the client leaves, the frame budget is spent, or
                // the server shuts down.
                let status = stream_metrics(reader.into_inner(), ctx, &request, trace);
                ctx.metrics
                    .record_request("stream_metrics", status, started.elapsed());
                return;
            }
            let mut span = rsmem_obs::span("service.http", "request");
            span.record("method", request.method.as_str());
            span.record("path", request.path.as_str());
            let (endpoint, response) = route(&request, ctx);
            span.record("endpoint", endpoint);
            span.record("status", u64::from(response.status));
            (
                endpoint,
                response.with_header("X-Rsmem-Trace-Id", &format_trace_id(trace)),
            )
        }
        Err(ReadError::Closed) => return, // shutdown wake-up or port scan
        Err(ReadError::Bad(message)) => ("other", Response::json(400, error_body(&message))),
        Err(ReadError::Io(_)) => return, // peer vanished mid-request
    };

    ctx.metrics
        .record_request(endpoint, response.status, started.elapsed());
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

/// `{"error": message}`, encoded.
fn error_body(message: &str) -> String {
    Value::object(vec![("error", Value::String(message.into()))]).encode()
}

/// Dispatches a parsed request; returns the endpoint label for metrics
/// and the response.
fn route(request: &Request, ctx: &Ctx) -> (&'static str, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/analyze") => ("analyze", handle_analyze(request, ctx)),
        ("GET", path) if path.starts_with("/v1/experiments/") => {
            ("experiment", handle_experiment(request, ctx))
        }
        ("GET", "/healthz") => (
            "healthz",
            Response::json(
                200,
                Value::object(vec![("status", Value::String("ok".into()))]).encode(),
            ),
        ),
        ("GET", "/metrics") => {
            let exemplars = matches!(request.query_param("exemplars"), Some("1" | "true"));
            (
                "metrics",
                Response::text(200, render_metrics_opts(ctx, exemplars)),
            )
        }
        ("GET", "/debug/profile") => ("profile", handle_profile(request)),
        ("GET", "/debug/flightrecorder") => ("flightrecorder", handle_flightrecorder(request)),
        ("GET", "/debug/metrics/history") => ("metrics_history", handle_metrics_history(ctx)),
        ("GET", "/v1/analyze")
        | (
            "POST",
            "/healthz"
            | "/metrics"
            | "/debug/profile"
            | "/debug/flightrecorder"
            | "/debug/metrics/history"
            | "/v1/stream/metrics",
        ) => (
            "other",
            Response::json(405, error_body("method not allowed for this route")),
        ),
        _ => ("other", Response::json(404, error_body("no such route"))),
    }
}

fn render_metrics(ctx: &Ctx) -> String {
    render_metrics_opts(ctx, false)
}

fn render_metrics_opts(ctx: &Ctx, exemplars: bool) -> String {
    let (stats, len, capacity) = (ctx.cache.stats(), ctx.cache.len(), ctx.cache.capacity());
    let mut text = if exemplars {
        ctx.metrics.render_with_exemplars(stats, len, capacity)
    } else {
        ctx.metrics.render(stats, len, capacity)
    };
    // Solver-level series (rsmem_solver_*, rsmem_arbiter_*) follow the
    // HTTP series in the same exposition.
    let registry = rsmem_obs::global();
    text.push_str(&if exemplars {
        registry.render_with_exemplars()
    } else {
        registry.render()
    });
    // Profiler summary series (rsmem_profile_span_us) aggregated per
    // span name across tree positions.
    text.push_str(&rsmem_obs::profile::snapshot().render_prometheus());
    text
}

/// Adds the watchdog's currently-breached rule names to a frame or
/// history document under `"breaches"`.
fn with_breaches(mut doc: Value, watchdog: &Watchdog) -> Value {
    let breaches = Value::Array(
        watchdog
            .active()
            .into_iter()
            .map(|name| Value::String(name.into()))
            .collect(),
    );
    if let Value::Object(fields) = &mut doc {
        fields.insert("breaches".into(), breaches);
    }
    doc
}

/// `GET /debug/metrics/history` — the sampler's whole ring as one
/// canonical `rsmem-metrics/1` document, plus the active SLO breaches.
fn handle_metrics_history(ctx: &Ctx) -> Response {
    let doc = with_breaches(ctx.sampler.history_json(), &ctx.watchdog);
    Response::json(200, doc.encode())
}

/// `GET /v1/stream/metrics` — newline-delimited `rsmem-metrics/1`
/// frames over chunked transfer encoding, one per `?interval_ms=`
/// (default: the sampler's interval, min 10 ms), until `?frames=N`
/// frames have been written (`0`, the default, streams until the client
/// hangs up or the server shuts down). Each write forces a fresh sample
/// and a watchdog pass, so a streaming client observes breaches at its
/// own cadence. Returns the status to record.
fn stream_metrics(mut stream: TcpStream, ctx: &Ctx, request: &Request, trace: u64) -> u16 {
    let interval = request
        .query_param("interval_ms")
        .and_then(|raw| raw.parse::<u64>().ok())
        .map_or_else(|| ctx.sampler.interval(), Duration::from_millis)
        .max(Duration::from_millis(10));
    let frames: u64 = request
        .query_param("frames")
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(0);
    let headers = vec![("X-Rsmem-Trace-Id".to_owned(), format_trace_id(trace))];
    if http::write_chunked_head(&mut stream, 200, "application/x-ndjson", &headers).is_err() {
        return 200; // client left before the head: nothing to do
    }
    let mut written = 0u64;
    loop {
        ctx.sampler.sample_now();
        ctx.watchdog.evaluate(&ctx.sampler);
        let Some(frame) = ctx.sampler.latest_json() else {
            break;
        };
        let mut line = with_breaches(frame, &ctx.watchdog).encode();
        line.push('\n');
        if http::write_chunk(&mut stream, line.as_bytes()).is_err() {
            return 200; // client hung up mid-stream: normal termination
        }
        written += 1;
        if frames != 0 && written >= frames {
            break;
        }
        // Sleep in short slices so shutdown is observed promptly.
        let mut remaining = interval;
        while !remaining.is_zero() {
            if ctx.shutting_down.load(Ordering::SeqCst) {
                let _ = http::finish_chunked(&mut stream);
                return 200;
            }
            let slice = remaining.min(Duration::from_millis(50));
            thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
    let _ = http::finish_chunked(&mut stream);
    200
}

/// `GET /debug/profile` — the aggregated call tree as canonical JSON.
/// `?reset=1` (or `true`) atomically snapshots **and** zeroes the
/// statistics, so periodic scrapers get disjoint epochs; the node tree
/// itself survives resets, keeping in-flight span exits attributable.
fn handle_profile(request: &Request) -> Response {
    let reset = matches!(request.query_param("reset"), Some("1" | "true"));
    let snapshot = if reset {
        rsmem_obs::profile::snapshot_and_reset()
    } else {
        rsmem_obs::profile::snapshot()
    };
    Response::json(200, snapshot.to_json().encode())
}

/// `GET /debug/flightrecorder` — the recorder's event rings and frozen
/// failure exemplars as the canonical `rsmem-trace/1` document.
/// `?reset=1` (or `true`) snapshots **and** starts a new epoch, the
/// same disjoint-scrape semantics as `/debug/profile`.
fn handle_flightrecorder(request: &Request) -> Response {
    let reset = matches!(request.query_param("reset"), Some("1" | "true"));
    let snapshot = if reset {
        rsmem_obs::recorder::snapshot_and_reset()
    } else {
        rsmem_obs::recorder::snapshot()
    };
    Response::json(200, rsmem_obs::recorder::to_json(&snapshot).encode())
}

/// Installs a process-wide panic hook (once) that freezes a `panic`
/// exemplar and dumps the recorder's recent history to stderr before
/// the default hook runs — a crashing worker leaves its forensics
/// behind even if the process dies.
fn install_panic_forensics() {
    static INSTALLED: std::sync::Once = std::sync::Once::new();
    INSTALLED.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if rsmem_obs::recorder::enabled() {
                let detail = info.to_string();
                rsmem_obs::recorder::record_exemplar_with("panic", || {
                    rsmem_obs::recorder::Exemplar {
                        detail: detail.clone(),
                        ..Default::default()
                    }
                });
                eprintln!("rsmem-service: panic captured by flight recorder: {detail}");
                eprint!(
                    "{}",
                    rsmem_obs::recorder::render_text(&rsmem_obs::recorder::snapshot())
                );
            }
            previous(info);
        }));
    });
}

fn handle_analyze(request: &Request, ctx: &Ctx) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::json(400, error_body("body must be UTF-8 JSON")),
    };
    let parsed = match json::parse(body) {
        Ok(value) => value,
        Err(e) => return Response::json(400, error_body(&e.to_string())),
    };
    let analyze = match AnalyzeRequest::from_json(&parsed) {
        Ok(analyze) => analyze,
        Err(message) => return Response::json(400, error_body(&message)),
    };

    let key = analyze.cache_key();
    let (result, outcome) = ctx.cache.get_or_compute(&key, || {
        let mut span = rsmem_obs::span("service.analyze", "solve");
        if span.active() {
            span.record("config_id", analyze.config_id());
        }
        let result = analyze.solve().map(|v| Arc::new(v.encode().into_bytes()));
        span.record("ok", result.is_ok());
        result
    });
    rsmem_obs::event(Level::Debug, "service.cache", "analyze_lookup")
        .field("outcome", cache_header(outcome))
        .emit();
    match result {
        Ok(bytes) => Response::json(200, bytes.as_slice().to_vec())
            .with_header("X-Cache", cache_header(outcome))
            .with_header("X-Config-Id", &analyze.config_id()),
        // Solver failures on a validated config are server-side errors.
        Err(message) => Response::json(500, error_body(&message)),
    }
}

fn cache_header(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Hit => "hit",
        Outcome::Miss => "miss",
        Outcome::Shared => "shared",
    }
}

/// Output format of the experiment endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Json,
    Csv,
}

/// Content negotiation: explicit `?format=` wins, then the `Accept`
/// header; default JSON.
fn negotiate_format(request: &Request) -> Result<Format, String> {
    if let Some(format) = request.query_param("format") {
        return match format {
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("unknown format {other:?} (expected json or csv)")),
        };
    }
    match request.header("accept") {
        Some(accept) if accept.contains("text/csv") => Ok(Format::Csv),
        _ => Ok(Format::Json),
    }
}

fn handle_experiment(request: &Request, ctx: &Ctx) -> Response {
    let name = request
        .path
        .strip_prefix("/v1/experiments/")
        .expect("routed by prefix");
    let id: ExperimentId = match name.parse() {
        Ok(id) => id,
        Err(e) => return Response::json(404, error_body(&e.to_string())),
    };
    let format = match negotiate_format(request) {
        Ok(format) => format,
        Err(message) => return Response::json(400, error_body(&message)),
    };

    // Rendered bytes are cached per (experiment, format); a JSON and a
    // CSV request each solve at most once.
    let key = format!("experiment/{id}/{format:?}");
    let (result, outcome) = ctx.cache.get_or_compute(&key, || {
        let output = run_with(id, &Parallelism::Serial).map_err(|e| e.to_string())?;
        let bytes = match (&output, format) {
            (ExperimentOutput::Figure(figure), Format::Json) => {
                figure_to_json(figure).encode().into_bytes()
            }
            (ExperimentOutput::Figure(figure), Format::Csv) => {
                report::figure_to_csv(figure).into_bytes()
            }
            (ExperimentOutput::Table(rows), Format::Json) => Value::object(vec![
                ("id", Value::String(id.to_string())),
                (
                    "rows",
                    Value::Array(
                        rows.iter()
                            .map(|r| {
                                Value::object(vec![
                                    ("label", Value::String(r.label.clone())),
                                    ("n", Value::Number(r.n as f64)),
                                    ("k", Value::Number(r.k as f64)),
                                    ("decode_cycles", Value::Number(r.decode_cycles as f64)),
                                    ("area_units", Value::Number(r.area_units as f64)),
                                    (
                                        "redundant_symbols",
                                        Value::Number(r.redundant_symbols as f64),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
            .encode()
            .into_bytes(),
            (ExperimentOutput::Table(rows), Format::Csv) => {
                report::complexity_to_csv(rows).into_bytes()
            }
        };
        Ok(Arc::new(bytes))
    });

    match result {
        Ok(bytes) => {
            let body = bytes.as_slice().to_vec();
            let response = match format {
                Format::Json => Response::json(200, body),
                Format::Csv => Response::csv(200, body),
            };
            response.with_header("X-Cache", cache_header(outcome))
        }
        Err(message) => Response::json(500, error_body(&message)),
    }
}

/// Encodes a figure as the API's JSON shape.
fn figure_to_json(figure: &Figure) -> Value {
    Value::object(vec![
        ("id", Value::String(figure.id.to_string())),
        ("title", Value::String(figure.title.clone())),
        ("x_label", Value::String(figure.x_label.clone())),
        ("y_label", Value::String(figure.y_label.clone())),
        (
            "series",
            Value::Array(
                figure
                    .series
                    .iter()
                    .map(|series| {
                        Value::object(vec![
                            ("label", Value::String(series.label.clone())),
                            (
                                "points",
                                Value::Array(
                                    series
                                        .points
                                        .iter()
                                        .map(|&(x, y)| Value::numbers(&[x, y]))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.split('?').next().unwrap().into(),
            query: path
                .split_once('?')
                .map(|(_, q)| {
                    q.split('&')
                        .filter_map(|p| p.split_once('='))
                        .map(|(k, v)| (k.to_owned(), v.to_owned()))
                        .collect()
                })
                .unwrap_or_default(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn test_ctx() -> Ctx {
        let cache = Arc::new(SingleFlightCache::new(8));
        let metrics = Metrics::new();
        let sampler = build_sampler(&ServiceConfig::default(), &metrics, &cache);
        Ctx {
            cache,
            metrics,
            sampler,
            watchdog: Watchdog::new(default_slo_rules()),
            shutting_down: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn router_statuses() {
        let ctx = test_ctx();
        assert_eq!(route(&get("/healthz"), &ctx).1.status, 200);
        assert_eq!(route(&get("/metrics"), &ctx).1.status, 200);
        assert_eq!(route(&get("/nope"), &ctx).1.status, 404);
        assert_eq!(route(&get("/v1/analyze"), &ctx).1.status, 405);
        assert_eq!(route(&get("/v1/experiments/fig99"), &ctx).1.status, 404);
        let mut post = get("/v1/analyze");
        post.method = "POST".into();
        post.body = b"{not json".to_vec();
        assert_eq!(route(&post, &ctx).1.status, 400);
    }

    #[test]
    fn metrics_history_returns_a_frames_document() {
        let ctx = test_ctx();
        ctx.sampler.sample_now();
        ctx.sampler.sample_now();
        let (endpoint, response) = route(&get("/debug/metrics/history"), &ctx);
        assert_eq!(endpoint, "metrics_history");
        assert_eq!(response.status, 200);
        let doc = json::parse(&String::from_utf8(response.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("rsmem-metrics/1")
        );
        assert_eq!(
            doc.get("frames").and_then(Value::as_array).unwrap().len(),
            2
        );
        assert!(doc.get("breaches").and_then(Value::as_array).is_some());
        // The aggregate series the sampler tracks are present per frame.
        let frame = &doc.get("frames").and_then(Value::as_array).unwrap()[0];
        assert!(frame.get("scalars").unwrap().get("requests").is_some());
        assert!(frame
            .get("quantiles")
            .unwrap()
            .get("request_duration_us")
            .is_some());
    }

    #[test]
    fn metrics_exemplars_flag_is_opt_in() {
        let ctx = test_ctx();
        // An observation under a live trace gives the request-duration
        // histogram an exemplar to render.
        let _trace = trace_scope(0x5EED);
        ctx.metrics
            .record_request("analyze", 200, Duration::from_micros(300));
        let (_, plain) = route(&get("/metrics"), &ctx);
        let (_, annotated) = route(&get("/metrics?exemplars=1"), &ctx);
        let plain = String::from_utf8(plain.body).unwrap();
        let annotated = String::from_utf8(annotated.body).unwrap();
        assert!(!plain.contains("# {trace_id="), "{plain}");
        assert!(
            annotated.contains("# {trace_id=\"0000000000005eed\"}"),
            "{annotated}"
        );
    }

    #[test]
    fn format_negotiation() {
        assert_eq!(
            negotiate_format(&get("/x?format=csv")).unwrap(),
            Format::Csv
        );
        assert_eq!(
            negotiate_format(&get("/x?format=json")).unwrap(),
            Format::Json
        );
        assert!(negotiate_format(&get("/x?format=xml")).is_err());
        let mut r = get("/x");
        r.headers.push(("accept".into(), "text/csv".into()));
        assert_eq!(negotiate_format(&r).unwrap(), Format::Csv);
        assert_eq!(negotiate_format(&get("/x")).unwrap(), Format::Json);
        // Explicit query parameter beats the Accept header.
        let mut r = get("/x?format=json");
        r.headers.push(("accept".into(), "text/csv".into()));
        assert_eq!(negotiate_format(&r).unwrap(), Format::Json);
    }

    #[test]
    fn experiment_complexity_table_renders_both_formats() {
        let ctx = test_ctx();
        let (_, json_response) = route(&get("/v1/experiments/complexity"), &ctx);
        assert_eq!(json_response.status, 200);
        let body = String::from_utf8(json_response.body).unwrap();
        assert!(body.contains("\"rows\""), "{body}");
        let (_, csv_response) = route(&get("/v1/experiments/complexity?format=csv"), &ctx);
        assert_eq!(csv_response.status, 200);
        assert_eq!(csv_response.content_type, "text/csv; charset=utf-8");
        assert!(String::from_utf8(csv_response.body)
            .unwrap()
            .starts_with("arrangement,"));
    }
}
