//! Command implementations. Each returns the text to print, so the whole
//! CLI is unit-testable without spawning processes.

use crate::args::{parse, Parsed};
use rsmem::experiments::{
    run_with, run_with_observer, ExperimentId, ExperimentOutput, ParseExperimentIdError,
};
use rsmem::scrub::{minimum_scrub_period, ScrubRecommendation};
use rsmem::units::{ErasureRate, SeuRate, Time, TimeGrid};
use rsmem::{report, CodeFamily, CodeParams, MemorySystem, Parallelism, ScrubTiming, Scrubbing};
use rsmem_obs::log::{next_trace_id, trace_scope, LogConfig};
use rsmem_obs::Progress;
use std::fmt::Write as _;
use std::sync::Mutex;

const HELP: &str = "\
rsmem — Reed–Solomon memory reliability toolkit (DATE 2005 reproduction)

USAGE:
  rsmem experiment <id> [--csv|--plot] regenerate a paper artifact
  rsmem sweep <id> [--csv|--plot]     like experiment, with progress + tracing
  rsmem profile <cmd ...>             run any command under the self-profiler
  rsmem trace [--] <cmd ...>          run any command under the flight
                                      recorder; print the event timeline
  rsmem bench [flags]                 benchmark suite → BENCH_<date>.json
  rsmem bench --compare OLD NEW       gate a new report against a baseline
  rsmem ber [flags]                   analytic BER(t) curve
  rsmem metrics [flags]               reliability, MTTF, expected uptime
  rsmem simulate [flags]              Monte-Carlo campaign of the real system
  rsmem array [flags]                 whole-memory simulation with MBUs
  rsmem advise [flags]                slowest scrub period meeting a BER target
  rsmem complexity                    Section-6 decoder comparison
  rsmem compare [flags]               head-to-head BER + complexity across
                                      code families (RS / RM / interleaved RS)
  rsmem stress [flags]                differential stress/fault-injection run
  rsmem serve [flags]                 run the analysis daemon (rsmem-service)
  rsmem top [flags]                   live metrics dashboard: follow a running
                                      server's `/v1/stream/metrics`, or wrap a
                                      command and watch its counters move
  rsmem check-jsonl                   validate stdin as canonical JSON-lines
  rsmem list                          list experiment ids
  rsmem help                          this message

LOGGING (any command):
  RSMEM_LOG=FMT[:LEVEL[:TARGETS]]     structured events on stderr
  --log-format json|text|off          override RSMEM_LOG format
  --log-level error|warn|info|debug|trace
                                      override level (default: debug)

EXPERIMENT IDS: fig5 fig6 fig7 fig8 fig9 fig10 complexity

SYSTEM FLAGS (ber/simulate/advise):
  --duplex               duplex arrangement (default: simplex)
  --code N,K,M           RS code (default: 18,16,8)
  --seu RATE             SEU rate per bit per day (default: 0)
  --erasure RATE         permanent-fault rate per symbol per day (default: 0)
  --tsc SECONDS          scrub period; omitted = no scrubbing

COMMAND FLAGS:
  --hours H | --months M  horizon (default: 48 hours)
  --points N              grid points for `ber` (default: 25)
  --csv                   CSV output for `experiment`/`ber`
  --trials N              Monte-Carlo trials (default: 1000)
  --seed S                RNG seed, decimal or 0x-hex (default: 42)
  --days D                per-trial storage days for `simulate` (default: 2)
  --target-ber B          BER target for `advise` (default: 1e-6)
  --words N               array size for `array` (default: 32)
  --mbu B                 bits flipped per SEU for `array` (default: 1)
  --interleave D          interleaving depth for `array` (default: 1)
  --threads N             worker threads for `experiment`/`simulate`
                          (default: all cores; results do not depend on N)

COMPARE FLAGS:
  --families F1,F2,...    families to compare: rs, rm, irs
                          (default: rs,rm,irs)
  --quick                 CI smoke mode: 5 grid points
  --csv                   emit the BER matrix as CSV
  (also honours --duplex, --seu [default 1.7e-5], --erasure, --tsc,
   --hours/--months and --points)

STRESS FLAGS:
  --seed S                corpus seed, decimal or 0x-hex (default: 0xDA7E)
  --budget N|small|full   random decode cases; arbiter/exhaustive/x-val
                          budgets scale from it (default: full = 100000;
                          small = 2000 for CI smoke)

PROFILE FLAGS:
  --profile-json          emit the call tree as canonical JSON (suppresses
                          the wrapped command's own output)

TRACE FLAGS:
  --trace-json            emit the `rsmem-trace/1` canonical-JSON document
                          (suppresses the wrapped command's own output)

BENCH FLAGS:
  --quick                 CI smoke mode: fewer iterations, fig5+fig7 only
  --out PATH              report path (default: BENCH_<date>.json)
  --warn-timing           with --compare: timing regressions warn instead
                          of failing (fingerprint mismatches still fail)

SERVE FLAGS:
  --addr HOST:PORT        bind address (default: 127.0.0.1:7373; port 0 = ephemeral)
  --threads N             worker threads (default: all cores)
  --cache-cap N           result-cache capacity in entries (default: 128)
  --backlog N             queued connections before shedding 503 (default: 64)
  --sample-interval-ms MS time-series sampling interval (default: 1000)

TOP FLAGS:
  --url HOST:PORT         follow `GET /v1/stream/metrics` on a running
                          rsmem-service (http:// prefix optional)
  --interval MS           sampling/refresh interval (default: 1000)
  --frames N              stop after N frames (default: 0 = run until the
                          stream ends or the wrapped command exits)
  --raw                   emit raw `rsmem-metrics/1` JSON frames instead of
                          the rendered dashboard
";

/// Dispatches a raw argv to a command, returning printable output.
///
/// # Errors
///
/// A human-readable message for unknown commands, malformed flags or
/// underlying library errors.
pub fn dispatch(argv: &[String]) -> Result<String, String> {
    let parsed = parse(argv)?;
    apply_log_flags(&parsed)?;
    match parsed.positional.first().map(String::as_str) {
        None | Some("help") => Ok(HELP.to_owned()),
        Some("list") => Ok(ExperimentId::ALL
            .iter()
            .map(|id| format!("{id}\n"))
            .collect()),
        Some("experiment") => cmd_experiment(&parsed),
        Some("sweep") => cmd_sweep(&parsed),
        Some("check-jsonl") => check_jsonl(std::io::stdin().lock()),
        Some("ber") => cmd_ber(&parsed),
        Some("metrics") => cmd_metrics(&parsed),
        Some("simulate") => cmd_simulate(&parsed),
        Some("array") => cmd_array(&parsed),
        Some("advise") => cmd_advise(&parsed),
        Some("complexity") => {
            let rows = rsmem::complexity::section6_comparison();
            Ok(report::render_complexity(&rows))
        }
        Some("compare") => cmd_compare(&parsed),
        Some("stress") => cmd_stress(&parsed),
        Some("serve") => cmd_serve(&parsed),
        Some("top") => crate::top::cmd_top(argv, &parsed),
        Some("profile") => cmd_profile(argv, &parsed),
        Some("trace") => cmd_trace(argv, &parsed),
        Some("bench") => cmd_bench(&parsed),
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

fn experiment_id(name: &str) -> Result<ExperimentId, String> {
    name.parse()
        .map_err(|e: ParseExperimentIdError| e.to_string())
}

/// `--threads N` → a [`Parallelism`]; absent = all available cores.
fn parallelism_from(parsed: &Parsed) -> Result<Parallelism, String> {
    match parsed.value("--threads") {
        None => Ok(Parallelism::Auto),
        Some(_) => Ok(Parallelism::threads(parsed.usize_flag("--threads", 0)?)),
    }
}

/// Applies `--log-format`/`--log-level` on top of whatever `RSMEM_LOG`
/// configured in `main` (flags win; absent flags leave the env config
/// untouched).
fn apply_log_flags(parsed: &Parsed) -> Result<(), String> {
    if parsed.value("--log-format").is_none() && parsed.value("--log-level").is_none() {
        return Ok(());
    }
    let format = parsed.value("--log-format").unwrap_or("text");
    let spec = match parsed.value("--log-level") {
        Some(level) => format!("{format}:{level}"),
        None => format.to_owned(),
    };
    rsmem_obs::log::init(LogConfig::parse(&spec)?);
    Ok(())
}

/// Renders an experiment's output honouring `--csv`/`--plot` (shared by
/// `experiment` and `sweep`).
fn render_experiment(parsed: &Parsed, output: &ExperimentOutput) -> String {
    match (output.figure(), output.table()) {
        (Some(fig), _) if parsed.has("--csv") => report::figure_to_csv(fig),
        (Some(fig), _) if parsed.has("--plot") => {
            rsmem::plot::ascii_plot(fig, &rsmem::plot::PlotOptions::default())
        }
        (Some(fig), _) => report::render_figure(fig),
        (_, Some(rows)) => report::render_complexity(rows),
        _ => unreachable!("experiment output is figure or table"),
    }
}

fn cmd_experiment(parsed: &Parsed) -> Result<String, String> {
    let name = parsed
        .positional
        .get(1)
        .ok_or("experiment requires an id (see `rsmem list`)")?;
    let id = experiment_id(name)?;
    let par = parallelism_from(parsed)?;
    let output = run_with(id, &par).map_err(|e| e.to_string())?;
    Ok(render_experiment(parsed, &output))
}

/// Like `experiment`, but the whole run happens under a fresh trace ID
/// with a timed span and rate-limited progress reporting — the solver
/// spans inherit the trace ID through the worker pool, so
/// `RSMEM_LOG=json rsmem sweep fig7` yields a correlatable JSON-lines
/// record of everything one figure cost.
fn cmd_sweep(parsed: &Parsed) -> Result<String, String> {
    let name = parsed
        .positional
        .get(1)
        .ok_or("sweep requires an experiment id (see `rsmem list`)")?;
    let id = experiment_id(name)?;
    let par = parallelism_from(parsed)?;
    let _trace = trace_scope(next_trace_id());
    let mut span = rsmem_obs::span("cli.sweep", "sweep");
    if span.active() {
        span.record("experiment", id.to_string());
    }
    // The observer is called from whichever worker finishes a curve, so
    // the rate-limited reporter sits behind a mutex; the tuple keeps the
    // last-seen counts for the final 100% line.
    let progress = Mutex::new((Progress::new("cli.sweep", "sweep"), 0u64, 0u64));
    let output = run_with_observer(id, &par, &|done, total| {
        let mut guard = progress.lock().expect("progress lock");
        guard.1 = done as u64;
        guard.2 = total as u64;
        let (done, total) = (guard.1, guard.2);
        guard.0.tick(done, total, &[]);
    })
    .map_err(|e| e.to_string())?;
    let (mut reporter, done, total) = progress.into_inner().expect("progress lock");
    reporter.finish(done, total, &[]);
    span.record("curves", done);
    Ok(render_experiment(parsed, &output))
}

/// Validates a JSON-lines stream: every line must parse under the strict
/// shared codec *and* already be in canonical encoding (so
/// `RSMEM_LOG=json` output round-trips byte-identically). Factored over
/// `BufRead` so tests can drive it from a buffer.
fn check_jsonl(reader: impl std::io::BufRead) -> Result<String, String> {
    let mut lines = 0usize;
    for (index, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", index + 1))?;
        let value =
            rsmem_obs::json::parse(&line).map_err(|e| format!("line {}: {e}", index + 1))?;
        let canonical = value.encode();
        if canonical != line {
            return Err(format!(
                "line {}: parseable but not canonical\n  input:     {line}\n  canonical: {canonical}",
                index + 1
            ));
        }
        lines += 1;
    }
    Ok(format!("{lines} lines: strict canonical JSON\n"))
}

fn system_from(parsed: &Parsed) -> Result<MemorySystem, String> {
    let code = parsed.code_flag()?;
    let mut system = if parsed.has("--duplex") {
        MemorySystem::duplex(code)
    } else {
        MemorySystem::simplex(code)
    };
    system = system
        .with_seu_rate(SeuRate::per_bit_day(parsed.f64_flag("--seu", 0.0)?))
        .with_erasure_rate(ErasureRate::per_symbol_day(
            parsed.f64_flag("--erasure", 0.0)?,
        ));
    if parsed.value("--tsc").is_some() {
        let tsc = parsed.f64_flag("--tsc", 0.0)?;
        system = system.with_scrubbing(Scrubbing::every_seconds(tsc));
    }
    Ok(system)
}

fn horizon_from(parsed: &Parsed) -> Result<Time, String> {
    if parsed.value("--months").is_some() {
        Ok(Time::from_months(parsed.f64_flag("--months", 24.0)?))
    } else {
        Ok(Time::from_hours(parsed.f64_flag("--hours", 48.0)?))
    }
}

fn cmd_ber(parsed: &Parsed) -> Result<String, String> {
    let system = system_from(parsed)?;
    let horizon = horizon_from(parsed)?;
    let points = parsed.usize_flag("--points", 25)?.max(2);
    let grid = TimeGrid::linspace(Time::zero(), horizon, points);
    let curve = system.ber_curve(grid.points()).map_err(|e| e.to_string())?;

    let mut out = String::new();
    if parsed.has("--csv") {
        let _ = writeln!(out, "hours,fail_probability,ber");
        for (t, (p, b)) in grid
            .points()
            .iter()
            .zip(curve.fail_probability.iter().zip(&curve.ber))
        {
            let _ = writeln!(out, "{},{p:e},{b:e}", t.as_hours());
        }
    } else {
        let _ = writeln!(out, "{:>12} {:>14} {:>14}", "hours", "P_fail", "BER");
        for (t, (p, b)) in grid
            .points()
            .iter()
            .zip(curve.fail_probability.iter().zip(&curve.ber))
        {
            let _ = writeln!(out, "{:>12.3} {p:>14.4e} {b:>14.4e}", t.as_hours());
        }
    }
    Ok(out)
}

fn cmd_metrics(parsed: &Parsed) -> Result<String, String> {
    let system = system_from(parsed)?;
    let horizon = horizon_from(parsed)?;
    let mut out = String::new();
    let r = system.reliability(horizon).map_err(|e| e.to_string())?;
    let uptime = system.expected_uptime(horizon).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "horizon:          {horizon}");
    let _ = writeln!(out, "reliability R(t): {r:.9}");
    let _ = writeln!(out, "expected uptime:  {uptime}");
    match system.mttf() {
        Ok(mttf) => {
            let _ = writeln!(out, "MTTF:             {mttf}");
        }
        Err(_) => {
            let _ = writeln!(out, "MTTF:             unbounded (no failure reachable)");
        }
    }
    Ok(out)
}

fn cmd_array(parsed: &Parsed) -> Result<String, String> {
    let code = parsed.code_flag()?;
    let (n, k, m) = (code.n(), code.k(), code.m());
    let words = parsed.usize_flag("--words", 32)?;
    let mbu = parsed.usize_flag("--mbu", 1)? as u32;
    let depth = parsed.usize_flag("--interleave", 1)?;
    let trials = parsed.usize_flag("--trials", 200)?;
    let seed = parsed.u64_flag("--seed", 42)?;
    let config = rsmem::array::ArrayConfig {
        base: rsmem::SimConfig {
            n,
            k,
            m,
            family: code.family(),
            depth: u8::try_from(code.depth()).map_err(|_| "interleave depth too large")?,
            seu_per_bit_day: parsed.f64_flag("--seu", 0.0)?,
            erasure_per_symbol_day: parsed.f64_flag("--erasure", 0.0)?,
            scrub: parsed
                .value("--tsc")
                .map(|_| -> Result<_, String> {
                    let tsc = parsed.f64_flag("--tsc", 0.0)?;
                    Ok((tsc / 86_400.0, rsmem::ScrubTiming::Periodic))
                })
                .transpose()?,
            store_days: parsed.f64_flag("--days", 2.0)?,
        },
        words,
        mbu_width_bits: mbu,
        interleave_depth: depth,
    };
    let report =
        rsmem::array::run_simplex_array(&config, trials, seed).map_err(|e| e.to_string())?;
    Ok(format!(
        "{} trials × {} words: {} failed words ({} silent); \
         fraction {:.4e} (95% CI [{:.4e}, {:.4e}]), BER ≈ {:.4e}\n",
        report.trials,
        report.words,
        report.failed_words,
        report.silent_words,
        report.word_failure_fraction,
        report.wilson_95.0,
        report.wilson_95.1,
        report.ber_estimate
    ))
}

fn cmd_simulate(parsed: &Parsed) -> Result<String, String> {
    let system = system_from(parsed)?;
    let days = parsed.f64_flag("--days", 2.0)?;
    let trials = parsed.usize_flag("--trials", 1000)?;
    let seed = parsed.u64_flag("--seed", 42)?;
    let par = parallelism_from(parsed)?;
    // Under `rsmem trace` the MC shards freeze silent-corruption and
    // arbiter-reject exemplars; the wrapping timeline renders them, so
    // the summary itself stays byte-identical for equal (seed, trials)
    // regardless of recorder state or thread count.
    let report = system
        .monte_carlo_with(
            Time::from_days(days),
            trials,
            seed,
            ScrubTiming::Periodic,
            &par,
        )
        .map_err(|e| e.to_string())?;
    Ok(format!("{report}\n"))
}

/// Parses `--budget N|small|full`: named tiers for scripts and CI
/// (`small` = 2 000 for smoke runs, `full` = the 100 000 default) or an
/// explicit case count.
fn stress_budget(parsed: &Parsed) -> Result<usize, String> {
    match parsed.value("--budget") {
        None | Some("full") => Ok(100_000),
        Some("small") => Ok(2_000),
        Some(_) => parsed.usize_flag("--budget", 100_000),
    }
}

/// Renders every exemplar the flight recorder froze during a run, as a
/// ready-to-paste block appended to a failing command's output.
fn render_captured_exemplars() -> String {
    let snapshot = rsmem_obs::recorder::snapshot();
    if snapshot.exemplars.is_empty() {
        return String::new();
    }
    let mut out = String::from("\ncaptured failure exemplars:\n");
    for exemplar in &snapshot.exemplars {
        out.push_str(&rsmem_obs::recorder::render_exemplar_text(exemplar));
    }
    out
}

fn cmd_stress(parsed: &Parsed) -> Result<String, String> {
    let seed = parsed.u64_flag("--seed", 0xDA7E)?;
    let budget = stress_budget(parsed)?;
    let config = rsmem_stress::StressConfig::with_budget(seed, budget);
    // One trace ID for the whole run ties the per-suite spans and the
    // solver spans of the x-val stage together.
    let _trace = trace_scope(next_trace_id());
    // Capture failure exemplars even outside `rsmem trace`, so a
    // divergence always comes with its forensics attached. Snapshots
    // here never reset — a wrapping `rsmem trace` sees the same events.
    let recording = rsmem_obs::recorder::enable_scoped();
    let report = rsmem_stress::run(&config);
    drop(recording);
    let text = report.to_string();
    if report.is_clean() {
        Ok(text)
    } else {
        // Divergences are a hard failure: print the full report (with
        // the minimized repros and the recorder's frozen exemplars)
        // through the error channel so scripts and CI fail loudly.
        Err(format!(
            "{text}{}\nstress: {} divergence(s) found",
            render_captured_exemplars(),
            report.divergence_count()
        ))
    }
}

fn cmd_serve(parsed: &Parsed) -> Result<String, String> {
    let config = rsmem_service::ServiceConfig {
        addr: parsed
            .value("--addr")
            .unwrap_or("127.0.0.1:7373")
            .to_owned(),
        workers: parsed.usize_flag("--threads", 0)?,
        cache_capacity: parsed.usize_flag("--cache-cap", 128)?,
        backlog: parsed.usize_flag("--backlog", 64)?,
        sample_interval_ms: parsed.u64_flag("--sample-interval-ms", 1_000)?,
    };
    let server = rsmem_service::Server::bind(config).map_err(|e| e.to_string())?;
    // Announce on stderr before blocking so scripts can scrape the port.
    eprintln!("rsmem-service listening on {}", server.local_addr());
    server.run();
    Ok("server stopped\n".to_owned())
}

/// `rsmem profile <cmd ...>` — re-dispatches the wrapped command with
/// the hierarchical profiler enabled, then reports where the wall time
/// went. `--profile-json` swaps the text tree (appended after the
/// wrapped command's output) for the canonical-JSON document alone.
fn cmd_profile(argv: &[String], parsed: &Parsed) -> Result<String, String> {
    // The inner argv is everything except the leading `profile` token
    // and the flags that belong to the profiler itself.
    let mut inner: Vec<String> = Vec::with_capacity(argv.len());
    let mut stripped_command = false;
    for arg in argv {
        if !stripped_command && arg == "profile" {
            stripped_command = true;
            continue;
        }
        if arg == "--profile-json" {
            continue;
        }
        inner.push(arg.clone());
    }
    match inner.first().map(String::as_str) {
        None => {
            return Err(
                "profile requires a command to wrap (e.g. `rsmem profile sweep fig7`)".to_owned(),
            )
        }
        Some("profile") => return Err("profile cannot wrap itself".to_owned()),
        Some(_) => {}
    }
    let was_enabled = rsmem_obs::profile::is_enabled();
    rsmem_obs::profile::set_enabled(true);
    rsmem_obs::profile::reset();
    let started = std::time::Instant::now();
    let result = dispatch(&inner);
    let wall_us = (started.elapsed().as_secs_f64() * 1e6) as u64;
    let snapshot = rsmem_obs::profile::snapshot_and_reset();
    rsmem_obs::profile::set_enabled(was_enabled);
    let inner_output = result?;
    if parsed.has("--profile-json") {
        let mut doc = snapshot.to_json();
        if let rsmem_obs::json::Value::Object(map) = &mut doc {
            map.insert(
                "wall_us".to_owned(),
                rsmem_obs::json::Value::Number(wall_us as f64),
            );
        }
        Ok(format!("{}\n", doc.encode()))
    } else {
        let attributed = snapshot.root_total_us();
        let percent = if wall_us > 0 {
            attributed as f64 / wall_us as f64 * 100.0
        } else {
            100.0
        };
        let mut out = inner_output;
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "--- profile: {wall_us}µs wall, {percent:.1}% attributed ---"
        );
        out.push_str(&snapshot.render_text());
        Ok(out)
    }
}

/// `rsmem trace [--] <cmd ...>` — re-dispatches the wrapped command with
/// the flight recorder enabled, then replays the ring as a
/// trace-id-grouped timeline with the frozen failure exemplars attached.
/// `--trace-json` swaps the text tree (appended after the wrapped
/// command's output) for the canonical-JSON `rsmem-trace/1` document
/// alone. When the wrapped command fails, the timeline is appended to
/// its error so the forensics still surface.
fn cmd_trace(argv: &[String], parsed: &Parsed) -> Result<String, String> {
    // The inner argv is everything except the leading `trace` token, the
    // recorder's own flags and the conventional `--` separator.
    let mut inner: Vec<String> = Vec::with_capacity(argv.len());
    let mut stripped_command = false;
    for arg in argv {
        if !stripped_command && arg == "trace" {
            stripped_command = true;
            continue;
        }
        if arg == "--trace-json" {
            continue;
        }
        if inner.is_empty() && arg == "--" {
            continue;
        }
        inner.push(arg.clone());
    }
    match inner.first().map(String::as_str) {
        None => {
            return Err(
                "trace requires a command to wrap (e.g. `rsmem trace -- stress --budget small`)"
                    .to_owned(),
            )
        }
        Some("trace") => return Err("trace cannot wrap itself".to_owned()),
        Some(_) => {}
    }
    let recording = rsmem_obs::recorder::enable_scoped();
    // Start from a fresh epoch so the timeline covers this run alone.
    let _ = rsmem_obs::recorder::snapshot_and_reset();
    let result = dispatch(&inner);
    let snapshot = rsmem_obs::recorder::snapshot_and_reset();
    drop(recording);
    let rendered = if parsed.has("--trace-json") {
        format!("{}\n", rsmem_obs::recorder::to_json(&snapshot).encode())
    } else {
        rsmem_obs::recorder::render_text(&snapshot)
    };
    match result {
        Ok(inner_output) => {
            if parsed.has("--trace-json") {
                Ok(rendered)
            } else {
                let mut out = inner_output;
                if !out.is_empty() && !out.ends_with('\n') {
                    out.push('\n');
                }
                out.push_str(&rendered);
                Ok(out)
            }
        }
        Err(e) => Err(format!("{e}\n{rendered}")),
    }
}

/// Reads and schema-validates a `BENCH_<date>.json` report.
fn load_bench_report(path: &str) -> Result<rsmem_bench::harness::BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = rsmem_obs::json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
    rsmem_bench::harness::BenchReport::from_json(&value).map_err(|e| format!("{path}: {e}"))
}

/// `rsmem bench` — runs the continuous benchmark suite and writes the
/// canonical report; `rsmem bench --compare OLD NEW` gates NEW against
/// OLD and fails (nonzero exit) on hard violations or — unless
/// `--warn-timing` — statistically significant slowdowns.
fn cmd_bench(parsed: &Parsed) -> Result<String, String> {
    use rsmem_bench::harness;
    if let Some(old_path) = parsed.value("--compare") {
        let new_path = parsed
            .positional
            .get(1)
            .ok_or("bench --compare OLD NEW: the new report path is missing")?;
        let old = load_bench_report(old_path)?;
        let new = load_bench_report(new_path)?;
        let comparison = harness::compare(&old, &new);
        let text = comparison.render_text();
        let timing_is_fatal =
            !comparison.timing_regressions.is_empty() && !parsed.has("--warn-timing");
        if comparison.hard_failures.is_empty() && !timing_is_fatal {
            Ok(text)
        } else {
            Err(text)
        }
    } else {
        let quick = parsed.has("--quick");
        let report = harness::run_suite(quick)?;
        let path = parsed
            .value("--out")
            .map(ToOwned::to_owned)
            .unwrap_or_else(|| format!("BENCH_{}.json", harness::today_utc()));
        std::fs::write(&path, format!("{}\n", report.to_json().encode()))
            .map_err(|e| format!("writing {path}: {e}"))?;
        Ok(format!("{}wrote {path}\n", report.render_text()))
    }
}

fn cmd_advise(parsed: &Parsed) -> Result<String, String> {
    let system = system_from(parsed)?;
    let horizon = horizon_from(parsed)?;
    let target = parsed.f64_flag("--target-ber", 1e-6)?;
    let rec = minimum_scrub_period(&system, target, horizon, Time::from_seconds(10.0))
        .map_err(|e| e.to_string())?;
    Ok(match rec {
        ScrubRecommendation::NotNeeded => {
            format!("target BER {target:e} met without scrubbing\n")
        }
        ScrubRecommendation::Period {
            period,
            achieved_ber,
        } => format!(
            "scrub every {:.0} s ({}) → BER {achieved_ber:.3e} ≤ {target:e}\n",
            period.as_seconds(),
            period
        ),
        ScrubRecommendation::Unachievable { best_ber } => format!(
            "unachievable: even 10 s scrubbing gives BER {best_ber:.3e} > {target:e} \
             (scrubbing cannot repair permanent faults)\n"
        ),
    })
}

/// Parses `--families rs,rm,irs` into a deduplicated, order-preserving
/// family list.
fn parse_families(spec: &str) -> Result<Vec<CodeFamily>, String> {
    let mut families = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let family: CodeFamily = part
            .parse()
            .map_err(|_| format!("--families: unknown family {part:?} (expected rs, rm or irs)"))?;
        if !families.contains(&family) {
            families.push(family);
        }
    }
    if families.is_empty() {
        return Err("--families requires at least one of rs, rm, irs".to_owned());
    }
    Ok(families)
}

/// The representative geometry each family fields in `rsmem compare`.
///
/// All three sit in the same ~16-symbol-payload class so the BER axis
/// compares protection strategies, not word sizes: the paper's
/// RS(18,16) over GF(2^8), the majority-logic RM(1,5) (32 bits, 6 data)
/// and a depth-2 interleaving of RS(18,16) for burst resilience.
fn compare_family_params(family: CodeFamily) -> CodeParams {
    match family {
        CodeFamily::Rs => CodeParams::rs18_16(),
        CodeFamily::Rm => CodeParams::rm1(5).expect("RM(1,5) is a valid code"),
        CodeFamily::Irs => {
            CodeParams::interleaved(18, 16, 8, 2).expect("IRS(18,16)x2 is a valid code")
        }
    }
}

/// `rsmem compare` — the head-to-head code-family study: one
/// representative geometry per family under identical fault rates and
/// scrubbing, reporting BER(t) side by side plus the Section-6-schema
/// decoder complexity rows. `--quick` shrinks the time grid for CI
/// smoke runs; `--csv` emits the BER matrix alone.
fn cmd_compare(parsed: &Parsed) -> Result<String, String> {
    let families = parse_families(parsed.value("--families").unwrap_or("rs,rm,irs"))?;
    // Default to the paper's worst-case SEU environment so the curves
    // separate; `--seu 0` still yields the all-zero baseline.
    let seu = parsed.f64_flag("--seu", 1.7e-5)?;
    let erasure = parsed.f64_flag("--erasure", 0.0)?;
    let default_points = if parsed.has("--quick") { 5 } else { 25 };
    let points = parsed.usize_flag("--points", default_points)?.max(2);
    let horizon = horizon_from(parsed)?;
    let grid = TimeGrid::linspace(Time::zero(), horizon, points);

    let mut curves = Vec::with_capacity(families.len());
    let mut rows = Vec::with_capacity(families.len());
    for &family in &families {
        let params = compare_family_params(family);
        let mut system = if parsed.has("--duplex") {
            MemorySystem::duplex(params)
        } else {
            MemorySystem::simplex(params)
        };
        system = system
            .with_seu_rate(SeuRate::per_bit_day(seu))
            .with_erasure_rate(ErasureRate::per_symbol_day(erasure));
        if parsed.value("--tsc").is_some() {
            let tsc = parsed.f64_flag("--tsc", 0.0)?;
            system = system.with_scrubbing(Scrubbing::every_seconds(tsc));
        }
        let curve = system.ber_curve(grid.points()).map_err(|e| e.to_string())?;
        rows.push(
            rsmem::codes::build(params)
                .map_err(|e| e.to_string())?
                .complexity_model(),
        );
        curves.push((family, params, curve));
    }

    let mut out = String::new();
    if parsed.has("--csv") {
        let _ = write!(out, "hours");
        for (family, _, _) in &curves {
            let _ = write!(out, ",ber_{family}");
        }
        out.push('\n');
        for (i, t) in grid.points().iter().enumerate() {
            let _ = write!(out, "{}", t.as_hours());
            for (_, _, curve) in &curves {
                let _ = write!(out, ",{:e}", curve.ber[i]);
            }
            out.push('\n');
        }
        return Ok(out);
    }

    let _ = writeln!(
        out,
        "code-family comparison — {}, SEU {seu:e}/bit/day, erasure {erasure:e}/symbol/day, {}",
        if parsed.has("--duplex") {
            "duplex"
        } else {
            "simplex"
        },
        match parsed.value("--tsc") {
            Some(tsc) => format!("scrub every {tsc} s"),
            None => "no scrubbing".to_owned(),
        }
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<8} {:<26} {:>4} {:>4} {:>3} {:>7}",
        "family", "code", "n", "k", "m", "budget"
    );
    for (family, params, _) in &curves {
        let _ = writeln!(
            out,
            "{:<8} {:<26} {:>4} {:>4} {:>3} {:>7}",
            family.to_string(),
            params.to_string(),
            params.n(),
            params.k(),
            params.m(),
            params.capability().budget
        );
    }
    out.push('\n');
    let _ = write!(out, "{:>12}", "hours");
    for (family, _, _) in &curves {
        let _ = write!(out, " {:>14}", format!("BER {family}"));
    }
    out.push('\n');
    for (i, t) in grid.points().iter().enumerate() {
        let _ = write!(out, "{:>12.3}", t.as_hours());
        for (_, _, curve) in &curves {
            let _ = write!(out, " {:>14.4e}", curve.ber[i]);
        }
        out.push('\n');
    }
    out.push('\n');
    let _ = writeln!(out, "decoder complexity (Section-6 schema):");
    out.push_str(&report::render_complexity(&rows));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(parts: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = parts.iter().map(ToString::to_string).collect();
        dispatch(&argv)
    }

    #[test]
    fn help_and_list() {
        assert!(run_cli(&[]).unwrap().contains("USAGE"));
        assert!(run_cli(&["help"]).unwrap().contains("rsmem"));
        let list = run_cli(&["list"]).unwrap();
        assert!(list.contains("fig9") && list.contains("complexity"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run_cli(&["frobnicate"]).is_err());
    }

    #[test]
    fn stress_small_budget_runs_clean() {
        let out = run_cli(&["stress", "--seed", "0xDA7E", "--budget", "500"]).unwrap();
        assert!(out.contains("stress run"), "{out}");
        assert!(out.contains("divergences:   none"), "{out}");
    }

    #[test]
    fn compare_default_covers_all_three_families() {
        let out = run_cli(&["compare", "--quick"]).unwrap();
        assert!(out.contains("RS(18,16)"), "{out}");
        assert!(out.contains("RM(1,5)"), "{out}");
        assert!(out.contains("IRS(18,16)x2"), "{out}");
        assert!(out.contains("decode cycles"), "{out}");
        assert!(out.contains("BER rs"), "{out}");
    }

    #[test]
    fn compare_subset_csv_has_one_column_per_family() {
        let csv = run_cli(&["compare", "--quick", "--csv", "--families", "rs,rm"]).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "hours,ber_rs,ber_rm");
        // --quick pins 5 grid points; header + 5 rows.
        assert_eq!(csv.lines().count(), 6, "{csv}");
    }

    #[test]
    fn compare_rejects_unknown_families() {
        assert!(run_cli(&["compare", "--families", "bogus"]).is_err());
        assert!(run_cli(&["compare", "--families", ","]).is_err());
    }

    #[test]
    fn experiment_complexity_table() {
        let out = run_cli(&["experiment", "complexity"]).unwrap();
        assert!(out.contains("308"));
    }

    #[test]
    fn sweep_matches_experiment_output() {
        let sweep = run_cli(&["sweep", "fig5", "--csv", "--threads", "2"]).unwrap();
        let experiment = run_cli(&["experiment", "fig5", "--csv"]).unwrap();
        assert_eq!(sweep, experiment);
        assert!(run_cli(&["sweep"]).is_err());
        assert!(run_cli(&["sweep", "fig99"]).is_err());
    }

    #[test]
    fn check_jsonl_accepts_canonical_and_rejects_everything_else() {
        use std::io::Cursor;
        // Canonical encoding sorts object keys, so these are fixed points.
        let good = "{\"a\":1,\"b\":[true,null]}\n{\"level\":\"debug\",\"ts_us\":12}\n";
        let out = check_jsonl(Cursor::new(good)).unwrap();
        assert_eq!(out, "2 lines: strict canonical JSON\n");
        assert_eq!(
            check_jsonl(Cursor::new("")).unwrap(),
            "0 lines: strict canonical JSON\n"
        );
        // Parse failure carries the line number.
        let err = check_jsonl(Cursor::new("{\"a\":1}\n{nope\n")).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        // Valid JSON that is not in canonical encoding is rejected too.
        let err = check_jsonl(Cursor::new("{ \"a\" : 1 }\n")).unwrap_err();
        assert!(err.contains("not canonical"), "{err}");
        // A blank line is not a JSON value.
        assert!(check_jsonl(Cursor::new("{\"a\":1}\n\n{\"b\":2}\n")).is_err());
    }

    #[test]
    fn log_flags_are_validated() {
        assert!(run_cli(&["list", "--log-format", "yaml"]).is_err());
        assert!(run_cli(&["list", "--log-format", "json", "--log-level", "loud"]).is_err());
        // `off` is a valid format spec meaning "disable".
        assert!(run_cli(&["list", "--log-format", "off"]).is_ok());
    }

    #[test]
    fn experiment_plot_renders_ascii_chart() {
        let out = run_cli(&["experiment", "fig7", "--plot"]).unwrap();
        assert!(out.contains("legend:"), "{out}");
        assert!(out.contains('*'));
    }

    #[test]
    fn experiment_requires_valid_id() {
        assert!(run_cli(&["experiment"]).is_err());
        assert!(run_cli(&["experiment", "fig99"]).is_err());
    }

    #[test]
    fn ber_plain_and_csv() {
        let plain = run_cli(&[
            "ber", "--duplex", "--seu", "1.7e-5", "--hours", "48", "--points", "5",
        ])
        .unwrap();
        assert!(plain.contains("BER"));
        assert_eq!(plain.lines().count(), 6); // header + 5 points
        let csv = run_cli(&["ber", "--seu", "1.7e-5", "--points", "3", "--csv"]).unwrap();
        assert!(csv.starts_with("hours,fail_probability,ber"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn ber_honors_code_flag() {
        let out = run_cli(&[
            "ber",
            "--code",
            "36,16,8",
            "--erasure",
            "1e-6",
            "--months",
            "24",
            "--points",
            "3",
        ])
        .unwrap();
        assert!(out.contains("e-"));
        assert!(run_cli(&["ber", "--code", "1,2"]).is_err());
        assert!(run_cli(&["ber", "--code", "16,18,8"]).is_err()); // k > n
    }

    #[test]
    fn simulate_reports_trials() {
        let out = run_cli(&[
            "simulate", "--seu", "1e-2", "--trials", "50", "--seed", "7", "--days", "1",
        ])
        .unwrap();
        assert!(out.contains("50 trials"));
    }

    #[test]
    fn threads_flag_does_not_change_results() {
        let serial = run_cli(&["experiment", "fig5", "--csv", "--threads", "1"]).unwrap();
        let parallel = run_cli(&["experiment", "fig5", "--csv", "--threads", "4"]).unwrap();
        assert_eq!(serial, parallel);
        let sim_serial = run_cli(&[
            "simulate",
            "--seu",
            "1e-2",
            "--trials",
            "300",
            "--seed",
            "7",
            "--days",
            "1",
            "--threads",
            "1",
        ])
        .unwrap();
        let sim_parallel = run_cli(&[
            "simulate",
            "--seu",
            "1e-2",
            "--trials",
            "300",
            "--seed",
            "7",
            "--days",
            "1",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(sim_serial, sim_parallel);
    }

    #[test]
    fn threads_flag_rejects_garbage() {
        assert!(run_cli(&["simulate", "--threads", "many"]).is_err());
    }

    #[test]
    fn advise_recovers_paper_guidance() {
        let out = run_cli(&[
            "advise",
            "--duplex",
            "--seu",
            "1.7e-5",
            "--target-ber",
            "1e-6",
            "--hours",
            "48",
        ])
        .unwrap();
        assert!(out.contains("scrub every"), "{out}");
    }

    #[test]
    fn metrics_command_reports_all_quantities() {
        let out = run_cli(&["metrics", "--duplex", "--seu", "1e-4", "--hours", "48"]).unwrap();
        assert!(out.contains("reliability"));
        assert!(out.contains("MTTF"));
        assert!(out.contains("uptime"));
        // A fault-free system has unbounded MTTF.
        let free = run_cli(&["metrics"]).unwrap();
        assert!(free.contains("unbounded"), "{free}");
    }

    #[test]
    fn array_command_runs_mbu_campaign() {
        let out = run_cli(&[
            "array",
            "--seu",
            "1e-3",
            "--mbu",
            "4",
            "--interleave",
            "4",
            "--words",
            "8",
            "--trials",
            "10",
            "--days",
            "1",
        ])
        .unwrap();
        assert!(out.contains("10 trials × 8 words"), "{out}");
        // Bad interleave depth (does not divide words) is a typed error.
        assert!(run_cli(&["array", "--interleave", "3", "--words", "8"]).is_err());
    }

    #[test]
    fn serve_rejects_unbindable_addresses() {
        assert!(run_cli(&["serve", "--addr", "not-an-address"]).is_err());
        assert!(run_cli(&["serve", "--cache-cap", "lots"]).is_err());
    }

    #[test]
    fn trace_requires_a_wrappable_command() {
        assert!(run_cli(&["trace"]).is_err());
        assert!(run_cli(&["trace", "--"]).is_err());
        assert!(run_cli(&["trace", "trace", "list"]).is_err());
        // Errors of the wrapped command surface, with the timeline
        // appended for forensics.
        let err = run_cli(&["trace", "frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
        assert!(err.contains("flight recorder:"), "{err}");
    }

    #[test]
    fn trace_stress_captures_miscorrection_exemplars() {
        // The stress lattice legally miscorrects beyond-bound cases;
        // forensics mode must freeze them with their repro attached.
        let out = run_cli(&["trace", "--", "stress", "--budget", "small"]).unwrap();
        assert!(out.contains("stress run"), "{out}");
        assert!(out.contains("flight recorder: epoch"), "{out}");
        assert!(out.contains("miscorrection"), "{out}");
        assert!(
            out.contains("#[test]"),
            "ready-to-paste repro missing:\n{out}"
        );

        // The JSON form is the canonical `rsmem-trace/1` document and
        // carries the same exemplar forensics.
        let json_out =
            run_cli(&["trace", "--trace-json", "--", "stress", "--budget", "500"]).unwrap();
        let doc = rsmem_obs::json::parse(json_out.trim()).expect("canonical JSON");
        assert_eq!(
            doc.get("schema").and_then(rsmem_obs::json::Value::as_str),
            Some("rsmem-trace/1")
        );
        let exemplars = match doc.get("exemplars") {
            Some(rsmem_obs::json::Value::Array(list)) => list,
            other => panic!("exemplars array missing: {other:?}"),
        };
        assert!(
            exemplars.iter().any(|e| {
                e.get("kind").and_then(rsmem_obs::json::Value::as_str) == Some("miscorrection")
            }),
            "{json_out}"
        );
        assert!(json_out.contains("\"events\":"), "{json_out}");
    }

    #[test]
    fn profile_requires_a_wrappable_command() {
        assert!(run_cli(&["profile"]).is_err());
        assert!(run_cli(&["profile", "--profile-json"]).is_err());
        assert!(run_cli(&["profile", "profile", "list"]).is_err());
        // Errors of the wrapped command surface unchanged.
        assert!(run_cli(&["profile", "frobnicate"]).is_err());
    }

    #[test]
    fn profile_fig7_attributes_at_least_90_percent_of_wall_time() {
        // Acceptance criterion: the profiler must account for ≥90% of a
        // fig7 regeneration's wall time through named spans.
        let out = run_cli(&["profile", "sweep", "fig7", "--profile-json"]).unwrap();
        let doc = rsmem_obs::json::parse(out.trim()).expect("canonical JSON");
        assert_eq!(
            doc.get("schema").and_then(rsmem_obs::json::Value::as_str),
            Some("rsmem-profile/1")
        );
        let wall = doc
            .get("wall_us")
            .and_then(rsmem_obs::json::Value::as_f64)
            .expect("wall_us present");
        let spans = match doc.get("spans") {
            Some(rsmem_obs::json::Value::Array(spans)) => spans,
            other => panic!("spans array missing: {other:?}"),
        };
        let attributed: f64 = spans
            .iter()
            .map(|s| {
                s.get("total_us")
                    .and_then(rsmem_obs::json::Value::as_f64)
                    .unwrap_or(0.0)
            })
            .sum();
        assert!(
            attributed >= 0.9 * wall,
            "attributed {attributed}µs of {wall}µs wall"
        );
        // The call tree names the figure and its per-curve children.
        assert!(out.contains("\"name\":\"fig7\""), "{out}");
        assert!(out.contains("\"name\":\"scrub_curve\""), "{out}");
    }

    #[test]
    fn profile_text_report_follows_wrapped_output() {
        let out = run_cli(&["profile", "experiment", "fig5", "--csv"]).unwrap();
        let plain = run_cli(&["experiment", "fig5", "--csv"]).unwrap();
        assert!(out.starts_with(&plain), "wrapped output preserved");
        assert!(out.contains("--- profile:"), "{out}");
        assert!(out.contains("core.experiments.fig5"), "{out}");
    }

    fn sample_bench_report() -> rsmem_bench::harness::BenchReport {
        use rsmem_bench::harness::{BenchReport, BenchResult};
        let bench = |name: &str, base: f64| BenchResult {
            name: name.to_owned(),
            times_us: vec![base * 1.1, base, base * 1.05],
            min_us: base,
            median_us: base * 1.05,
            mad_us: base * 0.01,
            fingerprint: 0xFEED_F00D,
            symbols: 0,
        };
        BenchReport {
            mode: "quick".to_owned(),
            build_version: "0.1.0".to_owned(),
            build_git_hash: "cafebabe".to_owned(),
            benches: vec![bench("fig5", 900.0), bench("fig7", 1_200.0)],
        }
    }

    fn write_bench_report(
        tag: &str,
        report: &rsmem_bench::harness::BenchReport,
    ) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("rsmem-cli-bench-{}-{tag}.json", std::process::id()));
        std::fs::write(&path, format!("{}\n", report.to_json().encode())).unwrap();
        path
    }

    #[test]
    fn bench_compare_passes_self_and_flags_2x_slowdown() {
        // Acceptance criterion: self-comparison exits cleanly; a 2x
        // slowdown injected into fig7 is flagged with nonzero exit.
        let old = sample_bench_report();
        let old_path = write_bench_report("self-old", &old);
        let ok = run_cli(&[
            "bench",
            "--compare",
            old_path.to_str().unwrap(),
            old_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(ok.contains("comparison clean"), "{ok}");

        let mut slow = old.clone();
        let fig7 = slow.benches.iter_mut().find(|b| b.name == "fig7").unwrap();
        for t in &mut fig7.times_us {
            *t *= 2.0;
        }
        fig7.min_us *= 2.0;
        fig7.median_us *= 2.0;
        let slow_path = write_bench_report("self-slow", &slow);
        let err = run_cli(&[
            "bench",
            "--compare",
            old_path.to_str().unwrap(),
            slow_path.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(err.contains("fig7"), "{err}");
        assert!(!err.contains("fig5"), "{err}");

        // --warn-timing downgrades the slowdown to a warning (exit 0)…
        let warned = run_cli(&[
            "bench",
            "--compare",
            old_path.to_str().unwrap(),
            slow_path.to_str().unwrap(),
            "--warn-timing",
        ])
        .unwrap();
        assert!(warned.contains("REGRESSION"), "{warned}");

        // …but never rescues a determinism violation.
        let mut wrong = old.clone();
        wrong.benches[0].fingerprint ^= 1;
        let wrong_path = write_bench_report("self-wrong", &wrong);
        let err = run_cli(&[
            "bench",
            "--compare",
            old_path.to_str().unwrap(),
            wrong_path.to_str().unwrap(),
            "--warn-timing",
        ])
        .unwrap_err();
        assert!(err.contains("HARD FAIL"), "{err}");

        for p in [old_path, slow_path, wrong_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn bench_compare_reports_bad_inputs() {
        assert!(run_cli(&["bench", "--compare", "/nonexistent.json"]).is_err());
        let old = sample_bench_report();
        let old_path = write_bench_report("bad-inputs", &old);
        // Missing NEW positional.
        let err = run_cli(&["bench", "--compare", old_path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("new report path"), "{err}");
        let _ = std::fs::remove_file(old_path);
    }

    #[test]
    fn advise_reports_unachievable_for_permanent_faults() {
        let out = run_cli(&[
            "advise",
            "--erasure",
            "1e-2",
            "--target-ber",
            "1e-12",
            "--hours",
            "720",
        ])
        .unwrap();
        assert!(out.contains("unachievable"), "{out}");
    }
}
