//! `rsmem top` — a live text dashboard over the `rsmem-metrics/1`
//! time-series frames.
//!
//! Two modes share one renderer:
//!
//! * **Remote** (`--url HOST:PORT`): follow a running daemon's chunked
//!   `GET /v1/stream/metrics` endpoint and render each newline-delimited
//!   frame as it arrives.
//! * **Wrapped** (`rsmem top [--interval MS] -- <cmd ...>`): run any
//!   other command on a worker thread while the process-global sampler
//!   frames the solver counters at the chosen interval, with the solver
//!   SLO rules evaluated per frame; the wrapped command's own output is
//!   appended once it finishes.
//!
//! Frames go through an `emit` callback so tests can capture the live
//! stream without a terminal; the binary's callback prints and flushes.

use crate::args::Parsed;
use rsmem_obs::json::Value;
use rsmem_obs::timeseries::{self, Sampler};
use rsmem_obs::watchdog::{RuleKind, SloRule, Watchdog};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Entry point from the dispatcher: renders frames straight to stdout
/// (flushed per frame, so the dashboard is live even through a pipe).
pub fn cmd_top(argv: &[String], parsed: &Parsed) -> Result<String, String> {
    let mut stdout = std::io::stdout();
    run_top(argv, parsed, &mut |frame| {
        let _ = writeln!(stdout, "{frame}");
        let _ = stdout.flush();
    })
}

/// The testable seam behind [`cmd_top`]: every rendered frame is handed
/// to `emit`; the returned string is printed after the stream ends (the
/// wrapped command's output, or a stream summary).
pub fn run_top(
    argv: &[String],
    parsed: &Parsed,
    emit: &mut dyn FnMut(&str),
) -> Result<String, String> {
    let interval_ms = parsed.u64_flag("--interval", 1_000)?.max(10);
    let frames = parsed.u64_flag("--frames", 0)?;
    let raw = parsed.has("--raw");
    let inner = wrapped_argv(argv);
    match (parsed.value("--url"), inner.first().map(String::as_str)) {
        (Some(_), Some(_)) => {
            Err("top --url follows a remote stream and cannot also wrap a command".to_owned())
        }
        (Some(url), None) => {
            let delivered = follow_stream(url, interval_ms, frames, raw, emit)?;
            if raw {
                // Keep stdout pure JSON-lines so the stream pipes into
                // `rsmem check-jsonl` and friends.
                Ok(String::new())
            } else {
                Ok(format!("top: stream ended after {delivered} frame(s)\n"))
            }
        }
        (None, Some("top")) => Err("top cannot wrap itself".to_owned()),
        (None, Some(_)) => run_wrapped(&inner, interval_ms, frames, raw, emit),
        (None, None) => Err(
            "top requires --url HOST:PORT or a command to wrap (e.g. `rsmem top -- sweep fig7`)"
                .to_owned(),
        ),
    }
}

/// Everything in `argv` that belongs to the wrapped command: the leading
/// `top` token, top's own flags and the conventional `--` separator are
/// stripped; after the separator nothing more is interpreted.
fn wrapped_argv(argv: &[String]) -> Vec<String> {
    let mut inner: Vec<String> = Vec::with_capacity(argv.len());
    let mut stripped_command = false;
    let mut own_flags = true;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        if !stripped_command && arg == "top" {
            stripped_command = true;
            continue;
        }
        if own_flags {
            match arg.as_str() {
                "--" => {
                    own_flags = false;
                    continue;
                }
                "--interval" | "--frames" | "--url" => {
                    let _ = iter.next();
                    continue;
                }
                "--raw" => continue,
                _ => {}
            }
        }
        inner.push(arg.clone());
    }
    inner
}

/// Splits `--url` into the address handed to `TcpStream::connect`: the
/// scheme prefix and any trailing path are presentation, not transport.
fn stream_addr(url: &str) -> Result<&str, String> {
    let addr = url.strip_prefix("http://").unwrap_or(url);
    let addr = addr.split('/').next().unwrap_or(addr);
    if addr
        .rsplit(':')
        .next()
        .is_some_and(|p| p.parse::<u16>().is_ok())
    {
        Ok(addr)
    } else {
        Err(format!(
            "--url {url:?}: expected HOST:PORT (http:// prefix optional)"
        ))
    }
}

/// Follows `GET /v1/stream/metrics` on a running daemon, emitting one
/// rendered (or `--raw` JSON) frame per newline-delimited chunk. Returns
/// the number of frames delivered once the server closes the stream.
fn follow_stream(
    url: &str,
    interval_ms: u64,
    frames: u64,
    raw: bool,
    emit: &mut dyn FnMut(&str),
) -> Result<u64, String> {
    let addr = stream_addr(url)?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let request = format!(
        "GET /v1/stream/metrics?interval_ms={interval_ms}&frames={frames} HTTP/1.1\r\n\
         Host: {addr}\r\nConnection: close\r\n\r\n"
    );
    (&stream)
        .write_all(request.as_bytes())
        .map_err(|e| format!("sending request to {addr}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading response from {addr}: {e}"))?;
    if line.split_whitespace().nth(1) != Some("200") {
        return Err(format!("{addr}: unexpected response {}", line.trim()));
    }
    let mut chunked = false;
    loop {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading headers from {addr}: {e}"))?;
        let header = line.trim();
        if header.is_empty() {
            break;
        }
        if header.eq_ignore_ascii_case("transfer-encoding: chunked") {
            chunked = true;
        }
    }
    if !chunked {
        return Err(format!(
            "{addr}: /v1/stream/metrics did not stream a chunked body"
        ));
    }

    // Chunk payloads are whole `frame\n` lines, but reassemble anyway so
    // a proxy that re-frames the stream cannot split a frame in half.
    let mut pending = String::new();
    let mut delivered = 0u64;
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break; // connection closed
        }
        let len = match usize::from_str_radix(line.trim(), 16) {
            Ok(len) => len,
            Err(_) => return Err(format!("{addr}: malformed chunk header {line:?}")),
        };
        if len == 0 {
            break; // terminating chunk
        }
        let mut chunk = vec![0u8; len + 2]; // payload + trailing CRLF
        reader
            .read_exact(&mut chunk)
            .map_err(|e| format!("reading stream from {addr}: {e}"))?;
        pending.push_str(
            std::str::from_utf8(&chunk[..len])
                .map_err(|_| format!("{addr}: stream chunk is not UTF-8"))?,
        );
        while let Some(end) = pending.find('\n') {
            let frame: String = pending.drain(..=end).collect();
            emit_frame(frame.trim_end(), raw, emit)?;
            delivered += 1;
        }
    }
    Ok(delivered)
}

/// The SLO rules that make sense without a serving layer: the solver
/// counters the global sampler tracks by default.
fn solver_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "decode_failure_rate",
            kind: RuleKind::RateAbove {
                series: "decode_failures",
            },
            window: 5,
            threshold: 5.0,
        },
        SloRule {
            name: "mc_silent_rate",
            kind: RuleKind::RateAbove {
                series: "mc_silent",
            },
            window: 5,
            threshold: 0.5,
        },
    ]
}

/// Runs the wrapped command on a worker thread while the process-global
/// sampler frames the solver counters; one final frame lands after the
/// command ends so even sub-interval runs render at least once.
fn run_wrapped(
    inner: &[String],
    interval_ms: u64,
    frames: u64,
    raw: bool,
    emit: &mut dyn FnMut(&str),
) -> Result<String, String> {
    let sampler = timeseries::global();
    timeseries::track_solver_defaults(sampler);
    sampler.set_interval(Duration::from_millis(interval_ms));
    sampler.clear();
    let was_enabled = sampler.enabled();
    sampler.set_enabled(true);
    let watchdog = Watchdog::new(solver_slo_rules());

    let argv: Vec<String> = inner.to_vec();
    let worker = std::thread::Builder::new()
        .name("rsmem-top-inner".to_owned())
        .spawn(move || crate::commands::dispatch(&argv))
        .map_err(|e| format!("spawning wrapped command: {e}"))?;

    fn frame_once(
        sampler: &Sampler,
        watchdog: &Watchdog,
        raw: bool,
        delivered: &mut u64,
        emit: &mut dyn FnMut(&str),
    ) {
        sampler.sample_now();
        watchdog.evaluate(sampler);
        if let Some(frame) = sampler.latest_json() {
            let frame = with_breaches(frame, &watchdog.active());
            if raw {
                emit(&frame.encode());
            } else {
                emit(&render_frame(&frame));
            }
            *delivered += 1;
        }
    }

    let mut delivered = 0u64;
    while !worker.is_finished() && (frames == 0 || delivered < frames) {
        // Sleep in short slices so a fast wrapped command is not held
        // hostage by a long dashboard interval.
        let mut slept = 0u64;
        while slept < interval_ms && !worker.is_finished() {
            let slice = (interval_ms - slept).min(25);
            std::thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
        frame_once(sampler, &watchdog, raw, &mut delivered, emit);
    }
    if frames == 0 || delivered < frames {
        frame_once(sampler, &watchdog, raw, &mut delivered, emit);
    }
    sampler.set_enabled(was_enabled);
    worker
        .join()
        .map_err(|_| "wrapped command panicked".to_owned())?
}

/// Adds the watchdog's currently-breached rule names to a frame, same
/// shape as the service's streamed frames.
fn with_breaches(mut frame: Value, active: &[&'static str]) -> Value {
    if let Value::Object(map) = &mut frame {
        map.insert(
            "breaches".to_owned(),
            Value::Array(
                active
                    .iter()
                    .map(|r| Value::String((*r).to_owned()))
                    .collect(),
            ),
        );
    }
    frame
}

/// Renders one frame (remote or local) through the shared dashboard.
fn emit_frame(line: &str, raw: bool, emit: &mut dyn FnMut(&str)) -> Result<(), String> {
    if raw {
        emit(line);
        return Ok(());
    }
    let frame = rsmem_obs::json::parse(line).map_err(|e| format!("malformed stream frame: {e}"))?;
    emit(&render_frame(&frame));
    Ok(())
}

/// Formats a value that is usually an integer count without a fraction,
/// but keeps two decimals for genuinely fractional gauges.
fn fmt_count(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// The text dashboard for one `rsmem-metrics/1` frame: scalars with
/// their windowed rates, histogram quantiles, and active SLO breaches.
fn render_frame(frame: &Value) -> String {
    let seq = frame.get("seq").and_then(Value::as_f64).unwrap_or(0.0);
    let ts_s = frame.get("ts_us").and_then(Value::as_f64).unwrap_or(0.0) / 1e6;
    let breaches: Vec<&str> = frame
        .get("breaches")
        .and_then(Value::as_array)
        .map(|list| list.iter().filter_map(Value::as_str).collect())
        .unwrap_or_default();
    let mut out = String::new();
    let _ = write!(out, "── frame {seq:.0} ── t+{ts_s:.1}s ── slo: ");
    if breaches.is_empty() {
        out.push_str("ok");
    } else {
        let _ = write!(out, "BREACH [{}]", breaches.join(", "));
    }
    out.push('\n');
    if let Some(scalars) = frame.get("scalars").and_then(Value::as_object) {
        let rates = frame.get("rates");
        for (name, value) in scalars {
            let v = value.as_f64().unwrap_or(0.0);
            let rate = rates.and_then(|r| r.get(name)).and_then(Value::as_f64);
            match rate {
                Some(rate) => {
                    let _ = writeln!(out, "  {name:<24} {:>14} {rate:>10.2}/s", fmt_count(v));
                }
                None => {
                    let _ = writeln!(out, "  {name:<24} {:>14}", fmt_count(v));
                }
            }
        }
    }
    if let Some(quantiles) = frame.get("quantiles").and_then(Value::as_object) {
        for (name, q) in quantiles {
            let pick = |key: &str| q.get(key).and_then(Value::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {name:<24} n={:<8} p50={:<10} p90={:<10} p99={}",
                fmt_count(pick("count")),
                fmt_count(pick("p50")),
                fmt_count(pick("p90")),
                fmt_count(pick("p99")),
            );
        }
    }
    // Trim the trailing newline: the emitter owns line separation.
    while out.ends_with('\n') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(parts: &[&str], emit: &mut dyn FnMut(&str)) -> Result<String, String> {
        let argv: Vec<String> = parts.iter().map(ToString::to_string).collect();
        let parsed = parse(&argv).unwrap();
        run_top(&argv, &parsed, emit)
    }

    #[test]
    fn top_requires_a_source() {
        let mut sink = |_: &str| {};
        assert!(run(&["top"], &mut sink).is_err());
        assert!(run(&["top", "--"], &mut sink).is_err());
        assert!(run(&["top", "top", "list"], &mut sink).is_err());
        assert!(run(&["top", "--url", "127.0.0.1:1", "--", "list"], &mut sink).is_err());
        assert!(run(&["top", "--url", "not-an-address"], &mut sink).is_err());
    }

    #[test]
    fn stream_addr_strips_scheme_and_path() {
        assert_eq!(
            stream_addr("http://127.0.0.1:7373").unwrap(),
            "127.0.0.1:7373"
        );
        assert_eq!(stream_addr("http://h:1/v1/stream/metrics").unwrap(), "h:1");
        assert_eq!(stream_addr("localhost:80").unwrap(), "localhost:80");
        assert!(stream_addr("no-port").is_err());
    }

    #[test]
    fn wrapped_argv_strips_only_tops_flags() {
        let argv: Vec<String> = ["top", "--interval", "50", "--raw", "--", "stress", "--raw"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(wrapped_argv(&argv), vec!["stress", "--raw"]);
        let argv: Vec<String> = ["top", "sweep", "fig7", "--csv"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(wrapped_argv(&argv), vec!["sweep", "fig7", "--csv"]);
    }

    #[test]
    fn render_frame_shows_rates_quantiles_and_breaches() {
        let frame = rsmem_obs::json::parse(
            "{\"breaches\":[\"decode_failure_rate\"],\"quantiles\":{\"lat\":{\"count\":4,\
             \"p50\":10,\"p90\":20,\"p99\":30,\"sum\":60}},\"rates\":{\"requests\":2.5},\
             \"scalars\":{\"inflight\":3,\"requests\":10},\"schema\":\"rsmem-metrics/1\",\
             \"seq\":7,\"ts_us\":1500000}",
        )
        .unwrap();
        let text = render_frame(&frame);
        assert!(text.contains("frame 7"), "{text}");
        assert!(text.contains("t+1.5s"), "{text}");
        assert!(text.contains("BREACH [decode_failure_rate]"), "{text}");
        assert!(text.contains("requests"), "{text}");
        assert!(text.contains("2.50/s"), "{text}");
        assert!(text.contains("p99=30"), "{text}");
        // The gauge has no rate column.
        let inflight = text.lines().find(|l| l.contains("inflight")).unwrap();
        assert!(!inflight.contains("/s"), "{text}");
    }

    /// Acceptance criterion: `rsmem top` renders live frames streamed
    /// from a loopback `rsmem serve`.
    #[test]
    fn top_follows_a_loopback_server_stream() {
        let server = rsmem_service::Server::bind(rsmem_service::ServiceConfig {
            addr: "127.0.0.1:0".into(),
            sample_interval_ms: 50,
            ..rsmem_service::ServiceConfig::default()
        })
        .expect("bind ephemeral server");
        let url = format!("http://{}", server.local_addr());

        let mut frames: Vec<String> = Vec::new();
        let summary = run(
            &["top", "--url", &url, "--interval", "20", "--frames", "2"],
            &mut |f| frames.push(f.to_owned()),
        )
        .unwrap();
        assert!(summary.contains("2 frame(s)"), "{summary}");
        assert_eq!(frames.len(), 2, "{frames:?}");
        for frame in &frames {
            assert!(frame.contains("── frame"), "{frame}");
            assert!(frame.contains("slo:"), "{frame}");
            assert!(frame.contains("requests"), "{frame}");
            assert!(frame.contains("request_duration_us"), "{frame}");
        }

        // --raw swaps the dashboard for the canonical JSON frames.
        let mut raw: Vec<String> = Vec::new();
        run(
            &[
                "top",
                "--url",
                &url,
                "--interval",
                "20",
                "--frames",
                "1",
                "--raw",
            ],
            &mut |f| raw.push(f.to_owned()),
        )
        .unwrap();
        assert_eq!(raw.len(), 1, "{raw:?}");
        let doc = rsmem_obs::json::parse(&raw[0]).expect("canonical frame");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("rsmem-metrics/1")
        );
        assert!(doc.get("breaches").and_then(Value::as_array).is_some());
        server.shutdown();
    }

    #[test]
    fn top_wraps_a_command_and_appends_its_output() {
        let mut frames: Vec<String> = Vec::new();
        let out = run(
            &[
                "top",
                "--interval",
                "20",
                "--",
                "simulate",
                "--seu",
                "1e-2",
                "--trials",
                "200",
                "--seed",
                "7",
                "--days",
                "1",
            ],
            &mut |f| frames.push(f.to_owned()),
        )
        .unwrap();
        // The wrapped command's own output survives, after the stream.
        assert!(out.contains("200 trials"), "{out}");
        // At least the post-completion frame rendered, with the solver
        // series the global sampler tracks by default.
        assert!(!frames.is_empty());
        let last = frames.last().unwrap();
        assert!(last.contains("decode_failures"), "{last}");
        assert!(last.contains("mc_trials"), "{last}");
    }
}
