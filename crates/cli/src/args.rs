//! Minimal flag parser — no external dependency needed for a handful of
//! flags.

use rsmem::CodeParams;
use std::collections::HashMap;

/// Parsed command line: positional arguments plus `--flag [value]` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parsed {
    pub positional: Vec<String>,
    flags: HashMap<String, Option<String>>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 8] = [
    "--csv",
    "--duplex",
    "--plot",
    "--profile-json",
    "--quick",
    "--raw",
    "--trace-json",
    "--warn-timing",
];

/// Parses `argv` into positionals and flags.
///
/// A bare `--` ends flag parsing: everything after it is positional
/// (so wrapper commands like `rsmem trace -- stress --budget small`
/// keep the wrapped command's flags intact).
///
/// # Errors
///
/// Returns a message for a value-taking flag with no value.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut iter = argv.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--" {
            parsed.positional.extend(iter.cloned());
            break;
        }
        if let Some(stripped) = arg.strip_prefix("--") {
            let name = format!("--{stripped}");
            if BOOLEAN_FLAGS.contains(&name.as_str()) {
                parsed.flags.insert(name, None);
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag {name} requires a value"))?;
                parsed.flags.insert(name, Some(value.clone()));
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// True when a boolean flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// The raw value of a flag, if given.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).and_then(|v| v.as_deref())
    }

    /// Parses a flag as `f64`.
    ///
    /// # Errors
    ///
    /// Message on an unparsable value.
    pub fn f64_flag(&self, flag: &str, default: f64) -> Result<f64, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag {flag}: expected a number, got {v:?}")),
        }
    }

    /// Parses a flag as `usize`.
    ///
    /// # Errors
    ///
    /// Message on an unparsable value.
    pub fn usize_flag(&self, flag: &str, default: usize) -> Result<usize, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag {flag}: expected an integer, got {v:?}")),
        }
    }

    /// Parses a flag as `u64`, accepting both decimal and `0x`-prefixed
    /// hexadecimal (seeds are conventionally quoted in hex, e.g.
    /// `--seed 0xDA7E`).
    ///
    /// # Errors
    ///
    /// Message on an unparsable value.
    pub fn u64_flag(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => {
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                parsed.map_err(|_| {
                    format!("flag {flag}: expected an integer (decimal or 0x-hex), got {v:?}")
                })
            }
        }
    }

    /// Parses `--code N,K,M` into validated [`CodeParams`] (default
    /// RS(18,16) over GF(2^8)), via `CodeParams::from_str`.
    ///
    /// # Errors
    ///
    /// Message on a malformed triple or invalid code.
    pub fn code_flag(&self) -> Result<CodeParams, String> {
        match self.value("--code") {
            None => Ok(CodeParams::rs18_16()),
            Some(v) => v.parse().map_err(|e| format!("--code {v:?}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn positionals_and_flags_separate() {
        let p = parse(&argv(&["ber", "--seu", "1e-5", "--csv"])).unwrap();
        assert_eq!(p.positional, vec!["ber"]);
        assert_eq!(p.value("--seu"), Some("1e-5"));
        assert!(p.has("--csv"));
        assert!(!p.has("--duplex"));
    }

    #[test]
    fn bench_and_profile_flags_are_boolean() {
        // These must not swallow the next token as a value.
        let p = parse(&argv(&["bench", "--quick", "--warn-timing", "out.json"])).unwrap();
        assert!(p.has("--quick"));
        assert!(p.has("--warn-timing"));
        assert_eq!(p.positional, vec!["bench", "out.json"]);
        let p = parse(&argv(&["profile", "--profile-json", "sweep", "fig7"])).unwrap();
        assert!(p.has("--profile-json"));
        assert_eq!(p.positional, vec!["profile", "sweep", "fig7"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["ber", "--seu"])).is_err());
    }

    #[test]
    fn double_dash_ends_flag_parsing() {
        let p = parse(&argv(&[
            "trace",
            "--trace-json",
            "--",
            "stress",
            "--budget",
            "small",
        ]))
        .unwrap();
        assert!(p.has("--trace-json"));
        assert!(!p.has("--budget"));
        assert_eq!(p.positional, vec!["trace", "stress", "--budget", "small"]);
        // A trailing separator is harmless.
        let p = parse(&argv(&["trace", "--"])).unwrap();
        assert_eq!(p.positional, vec!["trace"]);
    }

    #[test]
    fn numeric_flag_parsing() {
        let p = parse(&argv(&["x", "--seu", "1.7e-5", "--points", "25"])).unwrap();
        assert_eq!(p.f64_flag("--seu", 0.0).unwrap(), 1.7e-5);
        assert_eq!(p.usize_flag("--points", 10).unwrap(), 25);
        assert_eq!(p.f64_flag("--absent", 9.0).unwrap(), 9.0);
        assert!(p.f64_flag("--points", 0.0).is_ok()); // "25" parses as f64
    }

    #[test]
    fn bad_numbers_are_reported() {
        let p = parse(&argv(&["x", "--seu", "abc"])).unwrap();
        assert!(p.f64_flag("--seu", 0.0).is_err());
    }

    #[test]
    fn seed_flag_accepts_hex_and_decimal() {
        let p = parse(&argv(&["stress", "--seed", "0xDA7E"])).unwrap();
        assert_eq!(p.u64_flag("--seed", 0).unwrap(), 0xDA7E);
        let p = parse(&argv(&["stress", "--seed", "0Xda7e"])).unwrap();
        assert_eq!(p.u64_flag("--seed", 0).unwrap(), 0xDA7E);
        let p = parse(&argv(&["stress", "--seed", "42"])).unwrap();
        assert_eq!(p.u64_flag("--seed", 0).unwrap(), 42);
        let p = parse(&argv(&["stress"])).unwrap();
        assert_eq!(p.u64_flag("--seed", 7).unwrap(), 7);
        let bad = parse(&argv(&["stress", "--seed", "0xZZ"])).unwrap();
        assert!(bad.u64_flag("--seed", 0).is_err());
        let bad = parse(&argv(&["stress", "--seed", "-3"])).unwrap();
        assert!(bad.u64_flag("--seed", 0).is_err());
    }

    #[test]
    fn code_triple() {
        let p = parse(&argv(&["x", "--code", "36,16,8"])).unwrap();
        assert_eq!(p.code_flag().unwrap(), CodeParams::rs36_16());
        let d = parse(&argv(&["x"])).unwrap();
        assert_eq!(d.code_flag().unwrap(), CodeParams::rs18_16());
        let bad = parse(&argv(&["x", "--code", "36,16"])).unwrap();
        assert!(bad.code_flag().is_err());
    }
}
