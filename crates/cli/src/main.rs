//! `rsmem` — command-line interface to the Reed–Solomon memory
//! reliability toolkit.
//!
//! ```text
//! rsmem experiment <fig5|fig6|fig7|fig8|fig9|fig10|complexity> [--csv]
//! rsmem sweep     <same ids> [--csv|--plot]   with progress + tracing
//! rsmem ber       [system flags] [--hours H | --months M] [--points N] [--csv]
//! rsmem simulate  [system flags] [--days D] [--trials N] [--seed S]
//! rsmem advise    [system flags] [--target-ber B] [--hours H]
//! rsmem complexity
//! rsmem list
//! ```
//!
//! System flags: `--duplex` (default simplex), `--code N,K,M`
//! (default `18,16,8`), `--seu RATE` (/bit/day), `--erasure RATE`
//! (/symbol/day), `--tsc SECONDS` (scrub period; omit to disable).

mod args;
mod commands;
mod top;

use std::process::ExitCode;

fn main() -> ExitCode {
    // `RSMEM_LOG=json|text[:level[:targets]]` turns on structured
    // logging for the whole process; `--log-format`/`--log-level`
    // (applied in dispatch) override it. A malformed spec must not
    // abort an otherwise-valid run.
    if let Err(message) = rsmem_obs::log::init_from_env() {
        eprintln!("warning: ignoring RSMEM_LOG: {message}");
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `rsmem help` for usage");
            ExitCode::FAILURE
        }
    }
}
