//! Bounded-time replay of the pinned stress corpus.
//!
//! Each seed below once drove a full CLI-scale run; replaying a reduced
//! budget under `cargo test` keeps the harness itself honest (the same
//! generator, checkers and shrinkers execute) without blowing up the
//! tier-1 wall-clock. The seeds are *pinned*: the suites derive their
//! streams deterministically, so any future divergence on these seeds is
//! a real behavior change, not noise.

use rsmem_stress::{run, StressConfig};

/// The pinned corpus. 0xDA7E is the CI smoke seed; the others are the
/// seeds used while developing the harness (each of which historically
/// exposed at least one robustness gap in the arbiter input handling).
const CORPUS: [u64; 4] = [0xDA7E, 0xC0FFEE, 0x1234, 42];

#[test]
fn decode_and_arbiter_corpus_replays_clean() {
    for &seed in &CORPUS {
        let config = StressConfig {
            xval_configs: 0, // covered by the dedicated test below
            ..StressConfig::test_tier(seed)
        };
        let report = run(&config);
        assert!(
            report.is_clean(),
            "seed {seed:#x} found {} divergence(s):\n{report}",
            report.divergence_count()
        );
        assert_eq!(
            report.decode.cases as usize,
            config.decode_budget + config.exhaustive_budget
        );
        // The lattice reaches all three regions on every corpus seed.
        assert!(report.decode.inside > 0);
        assert!(report.decode.on_bound > 0);
        assert!(report.decode.beyond > 0);
        // ... including through the code-family trait seam.
        assert_eq!(report.families.cases as usize, config.families_budget);
        assert!(report.families.inside > 0);
        assert!(report.families.on_bound > 0);
        assert!(report.families.beyond > 0);
        assert!(report.arbiter.guaranteed > 0);
        assert!(report.arbiter.malformed_probes > 0);
    }
}

#[test]
fn xval_corpus_replays_clean() {
    // One seed with the full xval budget of the test tier: the analytic
    // transient and the simulator must stay inside the tolerance band.
    let config = StressConfig::test_tier(0xDA7E);
    let report = rsmem_stress::xval::run(0xDA7E, config.xval_configs, config.xval_trials, 4);
    assert!(
        report.divergences.is_empty(),
        "xval divergences: {:#?}",
        report.divergences
    );
    assert_eq!(report.configs as usize, config.xval_configs);
}

#[test]
fn ci_smoke_configuration_is_what_the_workflow_runs() {
    // scripts/verify.sh and CI run `rsmem stress --seed 0xDA7E --budget
    // 100000`; pin the derived budgets here so a config change cannot
    // silently shrink the CI sweep below the 1e5/1e4 acceptance floor.
    let config = StressConfig::with_budget(0xDA7E, 100_000);
    assert!(config.decode_budget >= 100_000);
    assert!(config.arbiter_budget >= 10_000);
    assert!(config.families_budget >= 10_000);
    assert!(config.exhaustive_budget > 0);
    assert!(config.xval_configs >= 4);
}
