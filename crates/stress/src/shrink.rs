//! Case minimization and reproduction rendering.
//!
//! When a suite finds an invariant violation it rarely finds a *small*
//! one. The shrinker greedily simplifies the failing case — dropping
//! erasures, restoring corrupted symbols, collapsing magnitudes to 1 and
//! zeroing data symbols — re-checking after each step that the *same
//! kind* of violation still reproduces, until a fixpoint. The minimized
//! case is then rendered as a self-contained `#[test]` the developer can
//! paste into `crates/code` (or `crates/sim`) verbatim.

use crate::decode::{check_case, DecodeCase};
use rsmem_code::{RsCode, Symbol};
use std::fmt::Write as _;

/// Greedily minimizes a failing decode case while the violation `kind`
/// keeps reproducing (see [`shrink_decode_with`]).
pub fn shrink_decode(code: &RsCode, case: DecodeCase, kind: &'static str) -> DecodeCase {
    shrink_decode_with(
        code,
        case,
        |c| matches!(check_case(code, c), Some((k, _)) if k == kind),
    )
}

/// Greedy shrink loop with an injected failure predicate. Each accepted
/// step strictly reduces the case (fewer erasures, fewer/smaller
/// corruptions, more zero data symbols), so termination is guaranteed.
pub fn shrink_decode_with<F>(code: &RsCode, case: DecodeCase, still_fails: F) -> DecodeCase
where
    F: Fn(&DecodeCase) -> bool,
{
    // Work on the error *pattern* (word ⊕ clean) so data simplification
    // can re-encode without losing the injected corruption.
    let mut data = case.data.clone();
    let mut delta: Vec<Symbol> = {
        let clean = code.encode(&data).expect("valid dataword");
        case.word.iter().zip(&clean).map(|(w, c)| w ^ c).collect()
    };
    let mut erasures = case.erasures.clone();

    let rebuild = |data: &[Symbol], delta: &[Symbol], erasures: &[usize]| {
        let clean = code.encode(data).expect("valid dataword");
        DecodeCase {
            word: clean.iter().zip(delta).map(|(c, d)| c ^ d).collect(),
            data: data.to_vec(),
            erasures: erasures.to_vec(),
            ..case.clone()
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        // Drop erasures one at a time.
        let mut i = 0;
        while i < erasures.len() {
            let mut cand = erasures.clone();
            cand.remove(i);
            if still_fails(&rebuild(&data, &delta, &cand)) {
                erasures = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
        // Remove or simplify corruption, one position at a time.
        for p in 0..delta.len() {
            if delta[p] == 0 {
                continue;
            }
            let saved = delta[p];
            delta[p] = 0;
            if still_fails(&rebuild(&data, &delta, &erasures)) {
                changed = true;
                continue;
            }
            if saved != 1 {
                delta[p] = 1;
                if still_fails(&rebuild(&data, &delta, &erasures)) {
                    changed = true;
                    continue;
                }
            }
            delta[p] = saved;
        }
        // Zero data symbols (the codeword follows by re-encoding).
        for i in 0..data.len() {
            if data[i] == 0 {
                continue;
            }
            let saved = data[i];
            data[i] = 0;
            if still_fails(&rebuild(&data, &delta, &erasures)) {
                changed = true;
            } else {
                data[i] = saved;
            }
        }
    }
    rebuild(&data, &delta, &erasures)
}

fn symbol_vec_literal(xs: &[Symbol]) -> String {
    let body: Vec<String> = xs.iter().map(ToString::to_string).collect();
    format!("vec![{}]", body.join(", "))
}

/// Renders a `Vec<usize>` literal (used for erasure-position lists).
pub fn usize_vec_literal(xs: &[usize]) -> String {
    let body: Vec<String> = xs.iter().map(ToString::to_string).collect();
    format!("vec![{}]", body.join(", "))
}

/// Renders the minimized case as a ready-to-paste unit test asserting
/// the violated invariant.
pub fn render_decode_repro(case: &DecodeCase, kind: &'static str, detail: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#[test]");
    let _ = writeln!(out, "fn stress_regression_{}() {{", kind.replace('-', "_"));
    let _ = writeln!(out, "    // found by rsmem-stress: {kind} — {detail}");
    let _ = writeln!(
        out,
        "    let code = RsCode::with_first_root({}, {}, {}, {}).unwrap();",
        case.n, case.k, case.m, case.b
    );
    let _ = writeln!(
        out,
        "    let data: Vec<Symbol> = {};",
        symbol_vec_literal(&case.data)
    );
    let _ = writeln!(
        out,
        "    let word: Vec<Symbol> = {};",
        symbol_vec_literal(&case.word)
    );
    let _ = writeln!(
        out,
        "    let erasures: Vec<usize> = {};",
        usize_vec_literal(&case.erasures)
    );
    let _ = writeln!(
        out,
        "    for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {{"
    );
    let _ = writeln!(
        out,
        "        let out = code.decode_with(&word, &erasures, backend).unwrap();"
    );
    match kind {
        "panic" | "api-error" => {
            let _ = writeln!(out, "        let _ = out; // must not panic or Err");
        }
        "clean-noncodeword" => {
            let _ = writeln!(
                out,
                "        if matches!(out, DecodeOutcome::Clean {{ .. }}) {{"
            );
            let _ = writeln!(
                out,
                "            assert!(code.is_codeword(&word).unwrap(), \"{{backend}}\");"
            );
            let _ = writeln!(out, "        }}");
        }
        "clean-wrong-data" | "miscorrect-within" | "detect-within" => {
            let _ = writeln!(
                out,
                "        // er + 2·re ≤ n − k here, so decoding must return the data."
            );
            let _ = writeln!(
                out,
                "        assert_eq!(out.data(), Some(&data[..]), \"{{backend}}\");"
            );
        }
        "invalid-codeword" | "reencode-mismatch" | "claim-beyond-capability" => {
            let _ = writeln!(
                out,
                "        if let DecodeOutcome::Corrected {{ data: d, codeword, corrections }} = &out {{"
            );
            let _ = writeln!(
                out,
                "            assert!(code.is_codeword(codeword).unwrap(), \"{{backend}}\");"
            );
            let _ = writeln!(
                out,
                "            assert_eq!(&code.encode(d).unwrap(), codeword, \"{{backend}}\");"
            );
            let _ = writeln!(
                out,
                "            let claimed = corrections.iter().filter(|c| !c.was_erasure).count();"
            );
            let _ = writeln!(
                out,
                "            assert!(erasures.len() + 2 * claimed <= code.parity_symbols());"
            );
            let _ = writeln!(out, "        }}");
        }
        _ => {
            let _ = writeln!(out, "        let _ = &out;");
        }
    }
    let _ = writeln!(out, "    }}");
    if kind == "backend-divergence" {
        let _ = writeln!(
            out,
            "    // Bounded-distance uniqueness: claim-valid successes must agree."
        );
        let _ = writeln!(
            out,
            "    let a = code.decode_with(&word, &erasures, DecoderBackend::Sugiyama).unwrap();"
        );
        let _ = writeln!(
            out,
            "    let b = code.decode_with(&word, &erasures, DecoderBackend::BerlekampMassey).unwrap();"
        );
        let _ = writeln!(
            out,
            "    if let (Some(da), Some(db)) = (a.data(), b.data()) {{"
        );
        let _ = writeln!(out, "        assert_eq!(da, db);");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the shrinker with a synthetic predicate (a real decoder
    /// divergence is — deliberately — unavailable): "position 3 is
    /// corrupted" plays the role of the violation. The kernel must be a
    /// zero dataword with a single magnitude-1 corruption and no
    /// erasures.
    #[test]
    fn shrinker_reduces_to_the_kernel() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = (1..=9).collect();
        let clean = code.encode(&data).unwrap();
        let mut word = clean.clone();
        word[3] ^= 7; // the "violation"
        word[5] ^= 2; // noise
        word[11] ^= 9; // noise
        let case = DecodeCase {
            n: 15,
            k: 9,
            m: 4,
            b: 0,
            data,
            word,
            erasures: vec![1, 6],
        };
        let min = shrink_decode_with(&code, case, |c| {
            let clean = code.encode(&c.data).unwrap();
            c.word[3] != clean[3]
        });
        assert_eq!(min.data, vec![0; 9]);
        assert!(min.erasures.is_empty());
        let clean = code.encode(&min.data).unwrap();
        let delta: Vec<Symbol> = min.word.iter().zip(&clean).map(|(w, c)| w ^ c).collect();
        let nonzero: Vec<usize> = (0..15).filter(|&p| delta[p] != 0).collect();
        assert_eq!(nonzero, vec![3]);
        assert_eq!(delta[3], 1);
    }

    #[test]
    fn repro_renders_a_compilable_looking_test() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = vec![0; 9];
        let word = code.encode(&data).unwrap();
        let case = DecodeCase {
            n: 15,
            k: 9,
            m: 4,
            b: 0,
            data,
            word,
            erasures: vec![2],
        };
        let text = render_decode_repro(&case, "miscorrect-within", "synthetic");
        assert!(text.contains("#[test]"));
        assert!(text.contains("fn stress_regression_miscorrect_within()"));
        assert!(text.contains("let erasures: Vec<usize> = vec![2];"));
        assert!(text.contains("assert_eq!(out.data(), Some(&data[..])"));
    }
}
