//! Differential stress suite for the Section-3 duplex arbiter.
//!
//! Generates correlated two-module fault patterns mirroring the paper's
//! duplex state variables — `X` (common stuck pairs), `Y` (single stuck
//! symbols), `b` (stuck + homologous SEU), `e1`/`e2` (independent SEUs),
//! `ec` (common SEUs) — and checks the arbiter against a brute-force
//! oracle:
//!
//! * it never panics and never returns `Err` on well-formed modules;
//! * within the **guaranteed set** — after erasure masking, each decoder
//!   faces a pattern within its own capability (common erasures plus
//!   residual random errors) — the arbiter must output the stored data;
//! * wrong output beyond the guarantee is counted (it is the silent
//!   channel the paper accepts), never flagged;
//! * malformed inputs (out-of-range or duplicate erasure positions,
//!   short/long words) must surface as `CodeError`, never as a panic.

use crate::report::{ArbiterReport, Divergence};
use crate::rng::SplitMix64;
use crate::shrink::usize_vec_literal;
use rsmem_code::{RsCode, Symbol};
use rsmem_sim::arbiter::arbitrate;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One correlated two-module injection case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterCase {
    /// Code parameters (always `b = 0` codes here).
    pub n: usize,
    /// Dataword length.
    pub k: usize,
    /// Symbol width.
    pub m: u32,
    /// Stored dataword.
    pub data: Vec<Symbol>,
    /// Module-1 stored word.
    pub word1: Vec<Symbol>,
    /// Module-2 stored word.
    pub word2: Vec<Symbol>,
    /// Located permanent faults in module 1.
    pub erasures1: Vec<usize>,
    /// Located permanent faults in module 2.
    pub erasures2: Vec<usize>,
}

impl ArbiterCase {
    /// The case's code.
    pub fn code(&self) -> RsCode {
        RsCode::new(self.n, self.k, self.m).expect("valid")
    }
}

/// The oracle's guaranteed-recoverable predicate: simulate the masking
/// step, then require each decoder's residual pattern (common erasures +
/// imported/ surviving random errors) to be within capability.
pub fn guaranteed(code: &RsCode, case: &ArbiterCase, clean: &[Symbol]) -> bool {
    let red = code.parity_symbols();
    let mut w1 = case.word1.clone();
    let mut w2 = case.word2.clone();
    let mut common = Vec::new();
    for &p in &case.erasures1 {
        if case.erasures2.contains(&p) {
            common.push(p);
        } else {
            w1[p] = w2[p];
        }
    }
    for &p in &case.erasures2 {
        if !case.erasures1.contains(&p) {
            w2[p] = case.word1[p];
        }
    }
    let residual = |w: &[Symbol]| {
        (0..case.n)
            .filter(|&p| !common.contains(&p) && w[p] != clean[p])
            .count()
    };
    let (r1, r2) = (residual(&w1), residual(&w2));
    let t = red / 2;
    common.len() + 2 * r1 <= red && common.len() + 2 * r2 <= red && r1 <= t && r2 <= t
}

/// Checks the arbiter invariants for one well-formed case. Returns the
/// violation as `(kind, detail)`, or `None`.
pub fn check_case(code: &RsCode, case: &ArbiterCase) -> Option<(&'static str, String)> {
    let clean = code.encode(&case.data).expect("valid dataword");
    let result = catch_unwind(AssertUnwindSafe(|| {
        arbitrate(
            code,
            &case.word1,
            &case.erasures1,
            &case.word2,
            &case.erasures2,
        )
    }));
    let output = match result {
        Err(_) => return Some(("panic", "arbitrate panicked on well-formed modules".into())),
        Ok(Err(e)) => {
            return Some((
                "api-error",
                format!("arbitrate rejected well-formed modules: {e}"),
            ))
        }
        Ok(Ok(output)) => output,
    };
    if guaranteed(code, case, &clean) && output.data() != Some(&case.data[..]) {
        return Some((
            "guaranteed-recovery-failed",
            format!(
                "guaranteed pattern (erasures {:?}/{:?}) produced {:?}",
                case.erasures1,
                case.erasures2,
                output.data().map(<[Symbol]>::len)
            ),
        ));
    }
    None
}

fn shrink(code: &RsCode, case: ArbiterCase, kind: &'static str) -> ArbiterCase {
    let still_fails = |c: &ArbiterCase| matches!(check_case(code, c), Some((k, _)) if k == kind);
    let clean = code.encode(&case.data).expect("valid dataword");
    let mut cur = case;
    let mut changed = true;
    while changed {
        changed = false;
        for module in 0..2 {
            // Drop erasures.
            let mut i = 0;
            loop {
                let mut cand = cur.clone();
                let list = if module == 0 {
                    &mut cand.erasures1
                } else {
                    &mut cand.erasures2
                };
                if i >= list.len() {
                    break;
                }
                list.remove(i);
                if still_fails(&cand) {
                    cur = cand;
                    changed = true;
                } else {
                    i += 1;
                }
            }
            // Restore corrupted symbols.
            for p in 0..cur.n {
                let mut cand = cur.clone();
                let w = if module == 0 {
                    &mut cand.word1
                } else {
                    &mut cand.word2
                };
                if w[p] == clean[p] {
                    continue;
                }
                w[p] = clean[p];
                if still_fails(&cand) {
                    cur = cand;
                    changed = true;
                }
            }
        }
    }
    cur
}

fn render_repro(case: &ArbiterCase, kind: &'static str, detail: &str) -> String {
    let sym_vec = |xs: &[Symbol]| {
        let body: Vec<String> = xs.iter().map(ToString::to_string).collect();
        format!("vec![{}]", body.join(", "))
    };
    let mut out = String::new();
    let _ = writeln!(out, "#[test]");
    let _ = writeln!(
        out,
        "fn stress_regression_arbiter_{}() {{",
        kind.replace('-', "_")
    );
    let _ = writeln!(out, "    // found by rsmem-stress: {kind} — {detail}");
    let _ = writeln!(
        out,
        "    let code = RsCode::new({}, {}, {}).unwrap();",
        case.n, case.k, case.m
    );
    let _ = writeln!(out, "    let data: Vec<Symbol> = {};", sym_vec(&case.data));
    let _ = writeln!(
        out,
        "    let word1: Vec<Symbol> = {};",
        sym_vec(&case.word1)
    );
    let _ = writeln!(
        out,
        "    let word2: Vec<Symbol> = {};",
        sym_vec(&case.word2)
    );
    let _ = writeln!(
        out,
        "    let erasures1: Vec<usize> = {};",
        usize_vec_literal(&case.erasures1)
    );
    let _ = writeln!(
        out,
        "    let erasures2: Vec<usize> = {};",
        usize_vec_literal(&case.erasures2)
    );
    let _ = writeln!(
        out,
        "    let out = arbitrate(&code, &word1, &erasures1, &word2, &erasures2).unwrap();"
    );
    if kind == "guaranteed-recovery-failed" {
        let _ = writeln!(
            out,
            "    // Both masked words are within capability: recovery is guaranteed."
        );
        let _ = writeln!(out, "    assert_eq!(out.data(), Some(&data[..]));");
    } else {
        let _ = writeln!(out, "    let _ = out; // must not panic or Err");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Injects one paper-state-variable pattern into a clean duplex pair.
fn inject(
    rng: &mut SplitMix64,
    code: &RsCode,
    clean: &[Symbol],
) -> (Vec<Symbol>, Vec<Symbol>, Vec<usize>, Vec<usize>) {
    let n = code.n();
    let size = u64::from(code.field().size());
    let mut w1 = clean.to_vec();
    let mut w2 = clean.to_vec();
    let mut e1 = Vec::new();
    let mut e2 = Vec::new();

    // Counts of each correlated class, kept small enough to fit in n.
    let x = rng.below_usize(3); // common stuck pairs
    let y = rng.below_usize(3); // single-module stuck
    let b = rng.below_usize(2); // stuck + homologous SEU
    let s1 = rng.below_usize(2); // independent SEUs, module 1
    let s2 = rng.below_usize(2); // independent SEUs, module 2
    let ec = rng.below_usize(2); // common (homologous) SEUs
    let mut positions: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut positions);
    let mut it = positions.into_iter();
    let mut take = |count: usize| -> Vec<usize> { it.by_ref().take(count).collect() };

    for p in take(x.min(n)) {
        w1[p] = rng.below(size) as Symbol;
        w2[p] = rng.below(size) as Symbol;
        e1.push(p);
        e2.push(p);
    }
    for p in take(y) {
        if rng.below(2) == 0 {
            w1[p] = rng.below(size) as Symbol;
            e1.push(p);
        } else {
            w2[p] = rng.below(size) as Symbol;
            e2.push(p);
        }
    }
    for p in take(b) {
        w1[p] = rng.below(size) as Symbol;
        e1.push(p);
        w2[p] ^= 1 + rng.below(size - 1) as Symbol;
    }
    for p in take(s1) {
        w1[p] ^= 1 + rng.below(size - 1) as Symbol;
    }
    for p in take(s2) {
        w2[p] ^= 1 + rng.below(size - 1) as Symbol;
    }
    for p in take(ec) {
        let mag = 1 + rng.below(size - 1) as Symbol;
        w1[p] ^= mag;
        w2[p] ^= mag;
    }
    (w1, w2, e1, e2)
}

/// One malformed-input probe: mutate a valid call into an invalid one
/// and require a typed error (never a panic, never `Ok`).
fn malformed_probe(
    rng: &mut SplitMix64,
    code: &RsCode,
    clean: &[Symbol],
) -> Option<(&'static str, String)> {
    let n = code.n();
    let variant = rng.below(5);
    let mut word1 = clean.to_vec();
    let mut word2 = clean.to_vec();
    let mut erasures1: Vec<usize> = Vec::new();
    let mut erasures2: Vec<usize> = Vec::new();
    let what = match variant {
        0 => {
            erasures1 = vec![n + rng.below_usize(10)];
            "out-of-range erasure in module 1"
        }
        1 => {
            erasures2 = vec![n + 99];
            "out-of-range erasure in module 2"
        }
        2 => {
            let p = rng.below_usize(n);
            erasures1 = vec![p, p];
            "duplicate erasure position"
        }
        3 => {
            word1.truncate(n - 1 - rng.below_usize(n - 1));
            "short module-1 word"
        }
        _ => {
            word2.push(0);
            "long module-2 word"
        }
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        arbitrate(code, &word1, &erasures1, &word2, &erasures2)
    }));
    match result {
        Err(_) => Some(("panic", format!("arbitrate panicked on {what}"))),
        Ok(Ok(_)) => Some((
            "malformed-accepted",
            format!("arbitrate accepted {what} without error"),
        )),
        Ok(Err(_)) => None,
    }
}

/// Runs `budget` correlated cases (one in 8 is a malformed-input probe)
/// alternating RS(15,9) and RS(18,16).
pub fn run(seed: u64, budget: usize, max_divergences: usize) -> ArbiterReport {
    let mut report = ArbiterReport::default();
    let mut rng = SplitMix64::new(seed);
    let mut progress = rsmem_obs::Progress::new("stress.arbiter", "arbiter sweep");
    let codes = [
        RsCode::new(15, 9, 4).expect("valid"),
        RsCode::new(18, 16, 8).expect("valid"),
    ];

    for i in 0..budget {
        if (i + 1).is_multiple_of(256) {
            progress.tick(
                (i + 1) as u64,
                budget as u64,
                &[("divergences", report.divergences.len() as u64)],
            );
        }
        let code = &codes[i % codes.len()];
        let size = u64::from(code.field().size());
        let data: Vec<Symbol> = (0..code.k()).map(|_| rng.below(size) as Symbol).collect();
        let clean = code.encode(&data).expect("valid dataword");

        if i % 8 == 7 {
            report.malformed_probes += 1;
            if let Some((kind, detail)) = malformed_probe(&mut rng, code, &clean) {
                if report.divergences.len() < max_divergences {
                    report.divergences.push(Divergence {
                        suite: "arbiter",
                        kind,
                        summary: format!("RS({},{}): {detail}", code.n(), code.k()),
                        repro: format!(
                            "// {detail}: call arbitrate with the malformed input and\n\
                             // assert it returns Err(CodeError), without panicking."
                        ),
                    });
                }
            }
            continue;
        }

        let (word1, word2, erasures1, erasures2) = inject(&mut rng, code, &clean);
        let case = ArbiterCase {
            n: code.n(),
            k: code.k(),
            m: code.symbol_bits(),
            data,
            word1,
            word2,
            erasures1,
            erasures2,
        };
        report.cases += 1;
        let is_guaranteed = guaranteed(code, &case, &clean);
        if is_guaranteed {
            report.guaranteed += 1;
        }
        if let Some((kind, detail)) = check_case(code, &case) {
            if report.divergences.len() < max_divergences {
                let minimized = shrink(code, case.clone(), kind);
                report.divergences.push(Divergence {
                    suite: "arbiter",
                    kind,
                    summary: format!("RS({},{}): {detail}", case.n, case.k),
                    repro: render_repro(&minimized, kind, &detail),
                });
            }
            continue;
        }
        // Oracle bookkeeping for the report.
        match arbitrate(
            code,
            &case.word1,
            &case.erasures1,
            &case.word2,
            &case.erasures2,
        )
        .expect("well-formed")
        .data()
        {
            Some(d) if d == case.data => report.recovered += 1,
            Some(_) => report.wrong_beyond += 1,
            None => report.no_output += 1,
        }
    }
    progress.finish(
        budget as u64,
        budget as u64,
        &[("divergences", report.divergences.len() as u64)],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlated_sweep_is_clean() {
        let report = run(0xDA7E, 2_000, 8);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert!(report.guaranteed > 0);
        assert_eq!(
            report.recovered + report.no_output + report.wrong_beyond,
            report.cases
        );
        assert!(report.malformed_probes > 0);
        // Wrong output only ever happens beyond the guaranteed set, so
        // recovery must dominate heavily under these light patterns.
        assert!(report.recovered > report.wrong_beyond);
    }

    #[test]
    fn guaranteed_predicate_matches_hand_cases() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = (0..9).collect();
        let clean = code.encode(&data).unwrap();
        // Single stuck symbol in module 1: masked for free → guaranteed.
        let mut w1 = clean.clone();
        w1[4] = 0;
        let case = ArbiterCase {
            n: 15,
            k: 9,
            m: 4,
            data: data.clone(),
            word1: w1,
            word2: clean.clone(),
            erasures1: vec![4],
            erasures2: vec![],
        };
        assert!(guaranteed(&code, &case, &clean));
        // Heavy independent corruption in both: not guaranteed.
        let mut w1 = clean.clone();
        let mut w2 = clean.clone();
        for p in 0..5 {
            w1[p] ^= 1;
            w2[14 - p] ^= 1;
        }
        let case = ArbiterCase {
            n: 15,
            k: 9,
            m: 4,
            data,
            word1: w1,
            word2: w2,
            erasures1: vec![],
            erasures2: vec![],
        };
        assert!(!guaranteed(&code, &case, &clean));
    }
}
