//! Analytic-vs-Monte-Carlo cross-validation.
//!
//! Draws randomized system configurations (arrangement, fault rates,
//! scrubbing) and compares the CTMC transient failure probability from
//! `rsmem`'s analytic models against the discrete-event simulator from
//! `crates/sim`, with a statistical tolerance band.
//!
//! Tolerance design: the Monte-Carlo estimate carries a Wilson 95%
//! interval, which an exact model still escapes one run in twenty — so
//! the band is the interval widened by three times its own width (plus a
//! 0.02 absolute floor for near-zero probabilities). For **duplex**
//! configurations the analytic side is itself a bracket: the paper's
//! conservative `BothWords` fail criterion sits above the simulator and
//! the `EitherWord` ablation below it (see `DESIGN.md`), so the check is
//! that the simulated fraction falls inside `[EitherWord, BothWords]`
//! expanded by the same slack.

use crate::report::{Divergence, XvalReport};
use crate::rng::SplitMix64;
use rsmem::units::{ErasureRate, SeuRate, Time};
use rsmem::{
    CodeParams, DuplexFailCriterion, DuplexOptions, MemorySystem, Parallelism, ScrubTiming,
    Scrubbing,
};
use std::fmt::Write as _;

/// One randomized configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct XvalConfig {
    duplex: bool,
    seu_per_bit_day: f64,
    erasure_per_symbol_day: f64,
    scrub_seconds: Option<f64>,
    store_days: f64,
}

fn build(config: &XvalConfig) -> MemorySystem {
    // RS(18,16) throughout: the paper's main code, and cheap enough for
    // both the analytic state space and the bounded test tier. (The
    // larger RS(36,16) analytic duplex model is orders of magnitude more
    // expensive and is exercised by the decode suite instead.)
    let mut system = if config.duplex {
        MemorySystem::duplex(CodeParams::rs18_16()).with_duplex_options(DuplexOptions {
            erasures_per_module: true,
            ..Default::default()
        })
    } else {
        MemorySystem::simplex(CodeParams::rs18_16())
    };
    system = system
        .with_seu_rate(SeuRate::per_bit_day(config.seu_per_bit_day))
        .with_erasure_rate(ErasureRate::per_symbol_day(config.erasure_per_symbol_day));
    if let Some(tsc) = config.scrub_seconds {
        system = system.with_scrubbing(Scrubbing::every_seconds(tsc));
    }
    system
}

fn render_repro(config: &XvalConfig, detail: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#[test]");
    let _ = writeln!(out, "fn stress_regression_xval() {{");
    let _ = writeln!(out, "    // found by rsmem-stress: {detail}");
    let arrangement = if config.duplex { "duplex" } else { "simplex" };
    let _ = writeln!(
        out,
        "    let mut system = MemorySystem::{arrangement}(CodeParams::rs18_16())"
    );
    let _ = writeln!(
        out,
        "        .with_seu_rate(SeuRate::per_bit_day({:e}))",
        config.seu_per_bit_day
    );
    let _ = writeln!(
        out,
        "        .with_erasure_rate(ErasureRate::per_symbol_day({:e}));",
        config.erasure_per_symbol_day
    );
    if let Some(tsc) = config.scrub_seconds {
        let _ = writeln!(
            out,
            "    system = system.with_scrubbing(Scrubbing::every_seconds({tsc:.1}));"
        );
    }
    let _ = writeln!(
        out,
        "    let t = Time::from_days({:.1});",
        config.store_days
    );
    let _ = writeln!(
        out,
        "    let p = system.ber_curve(&[t]).unwrap().fail_probability[0];"
    );
    let _ = writeln!(
        out,
        "    let mc = system.monte_carlo(t, 4000, 0xDA7E, ScrubTiming::Exponential).unwrap();"
    );
    let _ = writeln!(
        out,
        "    // compare p against mc.failure_fraction with a Wilson band"
    );
    let _ = writeln!(out, "    let _ = (p, mc);");
    let _ = writeln!(out, "}}");
    out
}

/// Runs `configs` randomized comparisons with `trials` Monte-Carlo
/// trials each.
pub fn run(seed: u64, configs: usize, trials: usize, max_divergences: usize) -> XvalReport {
    let mut report = XvalReport::default();
    let mut rng = SplitMix64::new(seed);
    let mut progress = rsmem_obs::Progress::new("stress.xval", "cross-validation");

    let mut drawn = 0usize;
    while drawn < configs {
        let seu = [0.0, 1e-3, 5e-3][rng.below_usize(3)];
        let erasure = [0.0, 1e-2, 3e-2][rng.below_usize(3)];
        if seu == 0.0 && erasure == 0.0 {
            continue; // nothing to validate
        }
        let config = XvalConfig {
            duplex: rng.below(2) == 0,
            seu_per_bit_day: seu,
            erasure_per_symbol_day: erasure,
            scrub_seconds: (rng.below(2) == 0).then_some(43_200.0),
            store_days: 2.0,
        };
        drawn += 1;
        report.configs += 1;

        let system = build(&config);
        let t = Time::from_days(config.store_days);
        let mc_seed = rng.next_u64();
        let run_one = || -> Result<(f64, f64, f64, f64, f64), String> {
            let upper = system
                .ber_curve(&[t])
                .map_err(|e| e.to_string())?
                .fail_probability[0];
            // For duplex, the EitherWord ablation is the lower edge of
            // the analytic bracket; for simplex the bracket collapses.
            let lower = if config.duplex {
                build(&config)
                    .with_duplex_options(DuplexOptions {
                        erasures_per_module: true,
                        fail_criterion: DuplexFailCriterion::EitherWord,
                    })
                    .ber_curve(&[t])
                    .map_err(|e| e.to_string())?
                    .fail_probability[0]
            } else {
                upper
            };
            let mc = system
                .monte_carlo_with(
                    t,
                    trials,
                    mc_seed,
                    ScrubTiming::Exponential,
                    &Parallelism::Auto,
                )
                .map_err(|e| e.to_string())?;
            let (lo, hi) = mc.wilson_95;
            Ok((lower, upper, mc.failure_fraction, lo, hi))
        };

        match run_one() {
            Err(message) => {
                if report.divergences.len() < max_divergences {
                    report.divergences.push(Divergence {
                        suite: "xval",
                        kind: "api-error",
                        summary: format!("{config:?}: {message}"),
                        repro: render_repro(&config, &message),
                    });
                }
            }
            Ok((lower, upper, frac, lo, hi)) => {
                let slack = (3.0 * (hi - lo)).max(0.02);
                let (band_lo, band_hi) = (
                    (lower.min(upper) - slack).max(0.0),
                    upper.max(lower) + slack,
                );
                let ok = frac >= band_lo && frac <= band_hi;
                report.lines.push(format!(
                    "{} seu={:.0e} er={:.0e} scrub={} → analytic [{lower:.4}, {upper:.4}] \
                     mc {frac:.4} (CI [{lo:.4}, {hi:.4}]) {}",
                    if config.duplex { "duplex " } else { "simplex" },
                    config.seu_per_bit_day,
                    config.erasure_per_symbol_day,
                    config.scrub_seconds.is_some(),
                    if ok { "✓" } else { "✗ DIVERGENT" },
                ));
                if !ok && report.divergences.len() < max_divergences {
                    let detail = format!(
                        "simulated {frac:.4} outside analytic band [{band_lo:.4}, {band_hi:.4}]"
                    );
                    report.divergences.push(Divergence {
                        suite: "xval",
                        kind: "model-divergence",
                        summary: format!("{config:?}: {detail}"),
                        repro: render_repro(&config, &detail),
                    });
                }
            }
        }
        // Each config costs a full Monte-Carlo campaign, so report after
        // every one rather than on a case-count stride.
        progress.tick(
            drawn as u64,
            configs as u64,
            &[("divergences", report.divergences.len() as u64)],
        );
    }
    progress.finish(
        configs as u64,
        configs as u64,
        &[("divergences", report.divergences.len() as u64)],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_couple_of_configs_validate_quickly() {
        // Bounded tier: two configs at modest trial count (exercised
        // more broadly by the corpus test and the CLI run).
        let report = run(0xC0FFEE, 2, 400, 4);
        assert_eq!(report.configs, 2);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    }
}
