//! `rsmem-stress` — deterministic differential stress/fault-injection
//! harness for the `rsmem` workspace.
//!
//! The analytic models, the decoder and the simulator of this workspace
//! all claim the same physics; this crate is the adversary that tries to
//! pull them apart. Four suites run from a single seed:
//!
//! 1. **decode** ([`decode`]) — erasure+error patterns swept across the
//!    capability lattice (inside / on / beyond `er + 2·re = n − k`)
//!    through encode → inject → decode with *both* key-equation
//!    back-ends, classifying corrected / detected / miscorrected and
//!    enforcing re-encode, syndrome and bounded-distance-uniqueness
//!    invariants; exhaustive on a small code, seeded-random on the rest
//!    of the zoo (including the paper's RS(18,16) and RS(36,16));
//! 2. **families** ([`families`]) — the same lattice sweep driven
//!    through the [`rsmem_codes::MemoryCode`] trait across the RS,
//!    Reed–Muller and interleaved-RS implementations, checking the
//!    trait contracts (plus RS trait-vs-concrete bit-identity and a
//!    `decode_batch`-vs-scalar differential);
//! 3. **arbiter** ([`arbiter_suite`]) — correlated two-module patterns
//!    mirroring the paper's duplex state variables (X/Y/b/e1/e2/ec)
//!    against a brute-force guaranteed-recovery oracle, plus
//!    malformed-input robustness probes;
//! 4. **xval** ([`xval`]) — randomized system configurations comparing
//!    the CTMC transient against the Monte-Carlo simulator inside a
//!    statistical tolerance band.
//!
//! Every violation is **shrunk** to a minimal reproduction and rendered
//! as a ready-to-paste unit test ([`shrink`]), so a CI failure is
//! immediately actionable. The whole run is reproducible from
//! `(seed, budget)` alone — the harness carries its own [`rng`].
//!
//! Surfaced as `rsmem stress --seed 0xDA7E --budget N` by the CLI and as
//! a bounded-time corpus replay under `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter_suite;
pub mod decode;
pub mod families;
pub mod report;
pub mod rng;
pub mod shrink;
pub mod xval;

pub use report::{
    ArbiterReport, DecodeReport, Divergence, FamiliesReport, StressReport, XvalReport,
};

/// Budgets and seed for one stress run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressConfig {
    /// Master seed; every suite derives its own stream from it.
    pub seed: u64,
    /// Random decode-chain cases.
    pub decode_budget: usize,
    /// Exhaustive small-code decode cases (0 disables the sweep).
    pub exhaustive_budget: usize,
    /// Correlated duplex-arbiter cases (includes malformed probes).
    pub arbiter_budget: usize,
    /// Code-family trait differential cases (RS/RM/IRS zoo).
    pub families_budget: usize,
    /// Randomized analytic-vs-simulation configurations.
    pub xval_configs: usize,
    /// Monte-Carlo trials per cross-validation configuration.
    pub xval_trials: usize,
    /// Cap on stored divergences per suite (each one is shrunk, which
    /// costs decodes).
    pub max_divergences: usize,
}

impl StressConfig {
    /// The configuration the CLI uses: `budget` random decode cases,
    /// with the other budgets scaled from it. Small budgets (quick
    /// smoke runs) skip the exhaustive sweep and shrink the
    /// cross-validation stage so `--budget 500` stays interactive.
    pub fn with_budget(seed: u64, budget: usize) -> Self {
        let full = budget >= 50_000;
        Self {
            seed,
            decode_budget: budget,
            exhaustive_budget: if full { 60_000 } else { 0 },
            arbiter_budget: (budget / 10).max(200),
            families_budget: (budget / 10).max(200),
            xval_configs: if full { 8 } else { 2 },
            xval_trials: if full { 2_500 } else { 400 },
            max_divergences: 16,
        }
    }

    /// A small configuration for the bounded-time `cargo test` tier.
    pub fn test_tier(seed: u64) -> Self {
        Self {
            seed,
            decode_budget: 3_000,
            exhaustive_budget: 10_000,
            arbiter_budget: 600,
            families_budget: 800,
            xval_configs: 2,
            xval_trials: 500,
            max_divergences: 8,
        }
    }
}

/// Runs all four suites and collects the report.
pub fn run(config: &StressConfig) -> StressReport {
    let mut run_span = rsmem_obs::span("stress", "run");
    run_span.record("seed", config.seed);
    let mut master = rng::SplitMix64::new(config.seed);
    let decode_seed = master.next_u64();
    let arbiter_seed = master.next_u64();
    let xval_seed = master.next_u64();
    // Drawn *after* the original three so adding the families suite did
    // not perturb their pinned streams.
    let families_seed = master.next_u64();
    // Each suite gets its own timed span; the Drop at the end of the
    // block stamps the elapsed time even if the suite panics.
    let decode = {
        let mut span = rsmem_obs::span("stress.decode", "suite");
        let report = decode::run(
            decode_seed,
            config.decode_budget,
            config.exhaustive_budget,
            config.max_divergences,
        );
        span.record("cases", report.cases);
        span.record("divergences", report.divergences.len() as u64);
        report
    };
    let families = {
        let mut span = rsmem_obs::span("stress.families", "suite");
        let report = families::run(
            families_seed,
            config.families_budget,
            config.max_divergences,
        );
        span.record("cases", report.cases);
        span.record("divergences", report.divergences.len() as u64);
        report
    };
    let arbiter = {
        let mut span = rsmem_obs::span("stress.arbiter", "suite");
        let report =
            arbiter_suite::run(arbiter_seed, config.arbiter_budget, config.max_divergences);
        span.record("cases", report.cases);
        span.record("divergences", report.divergences.len() as u64);
        report
    };
    let xval = {
        let mut span = rsmem_obs::span("stress.xval", "suite");
        let report = xval::run(
            xval_seed,
            config.xval_configs,
            config.xval_trials,
            config.max_divergences,
        );
        span.record("configs", report.configs);
        span.record("divergences", report.divergences.len() as u64);
        report
    };
    let report = StressReport {
        seed: config.seed,
        decode,
        families,
        arbiter,
        xval,
    };
    run_span.record("divergences", report.divergence_count() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_report() {
        let config = StressConfig {
            seed: 7,
            decode_budget: 300,
            exhaustive_budget: 500,
            arbiter_budget: 100,
            families_budget: 160,
            xval_configs: 1,
            xval_trials: 200,
            max_divergences: 4,
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a, b);
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn report_renders() {
        let config = StressConfig {
            seed: 3,
            decode_budget: 100,
            exhaustive_budget: 0,
            arbiter_budget: 50,
            families_budget: 40,
            xval_configs: 0,
            xval_trials: 0,
            max_divergences: 4,
        };
        let report = run(&config);
        let text = report.to_string();
        assert!(text.contains("stress run, seed 0x3"));
        assert!(text.contains("decode suite:"));
        assert!(text.contains("family suite:"));
        assert!(text.contains("divergences:   none"), "{text}");
    }
}
