//! Result types for a stress run.

use std::fmt;

/// One confirmed invariant violation, with a minimized reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which suite found it (`"decode"`, `"arbiter"`, `"xval"`).
    pub suite: &'static str,
    /// Stable machine-readable violation kind (e.g. `"miscorrect-within"`).
    pub kind: &'static str,
    /// Human-readable one-line description of the failing case.
    pub summary: String,
    /// A ready-to-paste `#[test]` reproducing the minimized case.
    pub repro: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}: {}", self.suite, self.kind, self.summary)?;
        writeln!(f, "minimized reproduction (paste as a unit test):")?;
        for line in self.repro.lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Outcome counters for the decode-chain differential suite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeReport {
    /// Injection cases executed (each case decodes with both back-ends).
    pub cases: u64,
    /// Cases strictly inside the capability bound (`er + 2·re < n−k`).
    pub inside: u64,
    /// Cases exactly on the bound (`er + 2·re = n−k`).
    pub on_bound: u64,
    /// Cases beyond the bound (`er + 2·re > n−k`).
    pub beyond: u64,
    /// Default-backend outcomes: word accepted unchanged.
    pub clean: u64,
    /// Default-backend outcomes: corrected back to the stored data.
    pub corrected: u64,
    /// Default-backend outcomes: detected-uncorrectable.
    pub detected: u64,
    /// Default-backend outcomes: silently decoded to *wrong* data.
    pub miscorrected: u64,
    /// Confirmed invariant violations (shrunk).
    pub divergences: Vec<Divergence>,
}

/// Outcome counters for the code-family trait differential suite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FamiliesReport {
    /// Injection cases executed across the RS/RM/IRS zoo.
    pub cases: u64,
    /// Cases strictly inside the family's capability budget.
    pub inside: u64,
    /// Cases exactly on the budget.
    pub on_bound: u64,
    /// Cases beyond the budget.
    pub beyond: u64,
    /// Outcomes: word accepted unchanged.
    pub clean: u64,
    /// Outcomes: corrected back to the stored data.
    pub corrected: u64,
    /// Outcomes: detected-uncorrectable.
    pub detected: u64,
    /// Outcomes: silently decoded to *wrong* data (only legal beyond
    /// the budget).
    pub miscorrected: u64,
    /// Confirmed invariant violations (shrunk).
    pub divergences: Vec<Divergence>,
}

/// Outcome counters for the duplex-arbiter suite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArbiterReport {
    /// Correlated two-module injection cases executed.
    pub cases: u64,
    /// Cases inside the paper's guaranteed-recoverable set.
    pub guaranteed: u64,
    /// Cases where the arbiter returned the stored data.
    pub recovered: u64,
    /// Cases where the arbiter withheld output.
    pub no_output: u64,
    /// Cases (necessarily beyond the guaranteed set) with wrong output —
    /// the silent-corruption channel the paper's Section 3 accepts.
    pub wrong_beyond: u64,
    /// Malformed-input probes executed (must reject, never panic).
    pub malformed_probes: u64,
    /// Confirmed invariant violations (shrunk).
    pub divergences: Vec<Divergence>,
}

/// Outcome counters for the analytic-vs-Monte-Carlo cross-validation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XvalReport {
    /// Randomized configurations compared.
    pub configs: u64,
    /// One formatted line per configuration (for the CLI report).
    pub lines: Vec<String>,
    /// Configurations whose analytic transient fell outside the
    /// tolerance band around the Monte-Carlo estimate.
    pub divergences: Vec<Divergence>,
}

/// The full result of [`crate::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct StressReport {
    /// The seed the run is reproducible from.
    pub seed: u64,
    /// Decode-chain differential suite results.
    pub decode: DecodeReport,
    /// Code-family trait differential suite results.
    pub families: FamiliesReport,
    /// Duplex-arbiter suite results.
    pub arbiter: ArbiterReport,
    /// Analytic-vs-simulation cross-validation results.
    pub xval: XvalReport,
}

impl StressReport {
    /// Total confirmed divergences across all suites.
    pub fn divergence_count(&self) -> usize {
        self.decode.divergences.len()
            + self.families.divergences.len()
            + self.arbiter.divergences.len()
            + self.xval.divergences.len()
    }

    /// True when no suite found any invariant violation.
    pub fn is_clean(&self) -> bool {
        self.divergence_count() == 0
    }

    /// All divergences across suites, in discovery order.
    pub fn divergences(&self) -> impl Iterator<Item = &Divergence> {
        self.decode
            .divergences
            .iter()
            .chain(&self.families.divergences)
            .chain(&self.arbiter.divergences)
            .chain(&self.xval.divergences)
    }
}

impl fmt::Display for StressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stress run, seed {:#x}", self.seed)?;
        let d = &self.decode;
        writeln!(
            f,
            "decode suite:  {} cases (lattice: {} inside / {} on / {} beyond the bound)",
            d.cases, d.inside, d.on_bound, d.beyond
        )?;
        writeln!(
            f,
            "               outcomes: {} clean, {} corrected, {} detected, {} miscorrected",
            d.clean, d.corrected, d.detected, d.miscorrected
        )?;
        let fam = &self.families;
        writeln!(
            f,
            "family suite:  {} cases (lattice: {} inside / {} on / {} beyond the budget)",
            fam.cases, fam.inside, fam.on_bound, fam.beyond
        )?;
        writeln!(
            f,
            "               outcomes: {} clean, {} corrected, {} detected, {} miscorrected",
            fam.clean, fam.corrected, fam.detected, fam.miscorrected
        )?;
        let a = &self.arbiter;
        writeln!(
            f,
            "arbiter suite: {} cases ({} in the guaranteed set), {} malformed-input probes",
            a.cases, a.guaranteed, a.malformed_probes
        )?;
        writeln!(
            f,
            "               outcomes: {} recovered, {} no-output, {} wrong-beyond-guarantee",
            a.recovered, a.no_output, a.wrong_beyond
        )?;
        writeln!(f, "ctmc x-val:    {} configurations", self.xval.configs)?;
        for line in &self.xval.lines {
            writeln!(f, "               {line}")?;
        }
        if self.is_clean() {
            writeln!(f, "divergences:   none")?;
        } else {
            writeln!(f, "divergences:   {}", self.divergence_count())?;
            for div in self.divergences() {
                writeln!(f)?;
                write!(f, "{div}")?;
            }
        }
        Ok(())
    }
}
