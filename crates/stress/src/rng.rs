//! Deterministic PRNG for the stress harness.
//!
//! The harness must replay a pinned seed corpus bit-for-bit across
//! platforms and releases, so it carries its own tiny generator instead
//! of depending on a `rand` distribution whose stream could change.

/// SplitMix64 (Steele, Lea & Flood 2014): 64 bits of state, full period,
/// passes BigCrush, and is trivially portable — exactly what a
/// reproducible stress corpus needs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value is fine, including 0).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound > 0`). Uses a plain modulo: the bias
    /// for the small bounds the harness draws (≤ 2^16) is ≪ 2^-47 and
    /// irrelevant for fault-pattern generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// A `usize` in `0..bound` (`bound > 0`).
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child stream (used to give each suite its
    /// own stream so budgets can change without reshuffling the others).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = SplitMix64::new(0xDA7E);
        let mut b = SplitMix64::new(0xDA7E);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_values() {
        // First outputs for seed 1234567, matching the published
        // SplitMix64 reference implementation. Pinning them here means
        // the replay corpus cannot drift silently if the constants are
        // ever touched.
        let mut g = SplitMix64::new(1_234_567);
        assert_eq!(g.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(g.next_u64(), 0x2C73_F084_5854_0FA5);
        assert_eq!(g.next_u64(), 0x883E_BCE5_A3F2_7C77);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::new(9);
        let mut xs: Vec<usize> = (0..50).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
