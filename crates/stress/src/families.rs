//! Differential stress suite for the code-family framework.
//!
//! The decode suite ([`crate::decode`]) hammers `RsCode` directly; this
//! suite drives the *trait seam* — every [`rsmem_codes::MemoryCode`]
//! implementation reached through [`rsmem_codes::build`] — with the same
//! capability-lattice sweep, so the Reed–Muller and interleaved-RS
//! decoders (and the trait plumbing itself) obey the contracts the
//! simulator and arbiter rely on:
//!
//! * `decode` never panics and never returns `Err` on well-formed input;
//! * a `Clean` outcome re-encodes to the received word, and inside the
//!   raw capability bound it carries the stored data;
//! * a `Corrected` outcome re-encodes from its own data, and inside the
//!   bound it carries the stored data; for RS and RM the claimed
//!   pattern stays within the budget (interleaved RS legitimately
//!   corrects beyond its *worst-case* budget when faults spread across
//!   constituents, so the claim gate is per-constituent there);
//! * inside the bound a decode never reports `Failure`;
//! * the trait's `decode_batch` agrees exactly with the scalar decode
//!   (classification, correction counts, in-place repair);
//! * for the RS family the trait object is **bit-identical** to calling
//!   `RsCode` directly.
//!
//! "Inside the bound" uses the raw decode-time budget
//! `CodeParams::capability().budget` (`er + 2·re ≤ budget`): the suite
//! performs no write-time stuck-at masking, so the masked-erasure
//! allowance of RM(1,r) does not apply.

use crate::report::{Divergence, FamiliesReport};
use crate::rng::SplitMix64;
use crate::shrink;
use rsmem_code::{BatchOutcome, DecodeOutcome, RsCode, Symbol};
use rsmem_codes::{build, MemoryCode};
use rsmem_models::{CodeFamily, CodeParams};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cases accumulated per code before a batched differential flush (same
/// bound as the decode suite's).
const BATCH_FLUSH: usize = 256;

/// The family zoo: the paper's RS(18,16) plus a mid-rate RS as trait
/// anchors, three Reed–Muller orders, and interleaved shapes covering
/// depth extremes and a tiny field.
pub fn zoo() -> Vec<CodeParams> {
    vec![
        CodeParams::rs18_16(),
        CodeParams::new(15, 9, 4).expect("valid RS"),
        CodeParams::rm1(3).expect("valid RM"),
        CodeParams::rm1(4).expect("valid RM"),
        CodeParams::rm1(5).expect("valid RM"),
        CodeParams::interleaved(15, 9, 4, 3).expect("valid IRS"),
        CodeParams::interleaved(18, 16, 8, 2).expect("valid IRS"),
        CodeParams::interleaved(7, 3, 3, 4).expect("valid IRS"),
    ]
}

/// One self-contained injection case against a family code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyCase {
    /// The code's counting parameters (family included).
    pub params: CodeParams,
    /// The stored dataword.
    pub data: Vec<Symbol>,
    /// The received (corrupted) word.
    pub word: Vec<Symbol>,
    /// Declared erasure positions.
    pub erasures: Vec<usize>,
}

impl FamilyCase {
    /// Builds the case's code through the factory (always valid by
    /// construction).
    pub fn code(&self) -> Box<dyn MemoryCode> {
        build(self.params).expect("zoo params are valid")
    }

    /// Number of true random errors: corrupted positions not declared
    /// as erasures.
    pub fn true_errors(&self, clean: &[Symbol]) -> usize {
        (0..self.params.n())
            .filter(|p| !self.erasures.contains(p) && self.word[*p] != clean[*p])
            .count()
    }
}

/// Checks every trait-level invariant for `case`; returns the first
/// violation as a stable `(kind, detail)` pair, or `None`.
pub fn check_case(code: &dyn MemoryCode, case: &FamilyCase) -> Option<(&'static str, String)> {
    let family = case.params.family();
    let clean = code.encode(&case.data).expect("valid dataword");
    let budget = case.params.capability().budget;
    let er = case.erasures.len();
    let re = case.true_errors(&clean);
    let within = er + 2 * re <= budget;

    let result = catch_unwind(AssertUnwindSafe(|| code.decode(&case.word, &case.erasures)));
    let outcome = match result {
        Err(_) => return Some(("panic", format!("{family} decode panicked"))),
        Ok(Err(e)) => {
            return Some((
                "api-error",
                format!("{family} rejected well-formed input: {e}"),
            ))
        }
        Ok(Ok(outcome)) => outcome,
    };
    match &outcome {
        DecodeOutcome::Clean { data } => {
            if code.encode(data).expect("decoded data is well-formed") != case.word {
                return Some((
                    "clean-noncodeword",
                    format!("{family} accepted a non-codeword"),
                ));
            }
            if within && data != &case.data {
                return Some(("clean-wrong-data", format!("{family} within bound")));
            }
        }
        DecodeOutcome::Corrected {
            data,
            codeword,
            corrections,
        } => {
            if &code.encode(data).expect("decoded data is well-formed") != codeword {
                return Some((
                    "reencode-mismatch",
                    format!("{family} data does not re-encode to its codeword"),
                ));
            }
            let claimed = corrections.iter().filter(|c| !c.was_erasure).count();
            if family != CodeFamily::Irs && er + 2 * claimed > budget {
                return Some((
                    "claim-beyond-capability",
                    format!("{family} claims {er} erasures + {claimed} errors, budget {budget}"),
                ));
            }
            if within && data != &case.data {
                return Some((
                    "miscorrect-within",
                    format!("{family} with er={er} re={re} inside the bound"),
                ));
            }
        }
        DecodeOutcome::Failure(failure) => {
            if within {
                return Some((
                    "detect-within",
                    format!("{family} reported {failure} with er={er} re={re} ≤ budget {budget}"),
                ));
            }
        }
    }

    // RS anchor: the trait object must be bit-identical to the concrete
    // decoder the rest of the workspace still calls directly.
    if family == CodeFamily::Rs {
        let concrete = RsCode::new(case.params.n(), case.params.k(), case.params.m())
            .expect("zoo RS is valid")
            .decode(&case.word, &case.erasures)
            .expect("well-formed case");
        if concrete != outcome {
            return Some((
                "trait-divergence",
                format!("trait object {outcome:?} vs concrete RsCode {concrete:?}"),
            ));
        }
    }
    None
}

/// Differentially checks the trait's `decode_batch` against the scalar
/// decode over a slice of same-code cases: same classification, same
/// correction counts, corrected words repaired in place, untouched
/// otherwise.
fn check_batch(
    code: &dyn MemoryCode,
    cases: &[FamilyCase],
    report: &mut FamiliesReport,
    max_divergences: usize,
) {
    if cases.is_empty() {
        return;
    }
    let mut push = |case: &FamilyCase, detail: String| {
        if report.divergences.len() < max_divergences {
            report.divergences.push(Divergence {
                suite: "families",
                kind: "batch-divergence",
                summary: format!("{}: {detail}", case.params),
                repro: render_family_repro(case, "batch-divergence", &detail),
            });
        }
    };
    let mut words: Vec<Vec<Symbol>> = cases.iter().map(|c| c.word.clone()).collect();
    let erasures: Vec<Vec<usize>> = cases.iter().map(|c| c.erasures.clone()).collect();
    let mut outcomes = Vec::with_capacity(cases.len());
    if let Err(e) = code.decode_batch(&mut words, &erasures, &mut outcomes) {
        push(
            &cases[0],
            format!("decode_batch rejected a well-formed batch: {e}"),
        );
        return;
    }
    for (i, case) in cases.iter().enumerate() {
        let scalar = code
            .decode(&case.word, &case.erasures)
            .expect("well-formed case");
        let agrees = match (&outcomes[i], &scalar) {
            (BatchOutcome::Clean, DecodeOutcome::Clean { .. }) => true,
            (
                BatchOutcome::Corrected { errors, erasures },
                DecodeOutcome::Corrected { corrections, .. },
            ) => {
                let erased = corrections.iter().filter(|c| c.was_erasure).count() as u32;
                *erasures == erased && *errors == corrections.len() as u32 - erased
            }
            (BatchOutcome::Failure(bf), DecodeOutcome::Failure(sf)) => bf == sf,
            _ => false,
        };
        if !agrees {
            push(
                case,
                format!(
                    "outcome mismatch: batch {:?} vs scalar {scalar:?}",
                    outcomes[i]
                ),
            );
            continue;
        }
        match &scalar {
            DecodeOutcome::Corrected { codeword, .. } => {
                if &words[i] != codeword {
                    push(
                        case,
                        "in-place corrected word differs from scalar codeword".to_string(),
                    );
                }
            }
            // Clean and Failure must leave the word untouched.
            _ => {
                if words[i] != case.word {
                    push(case, "batch mutated a word it did not correct".to_string());
                }
            }
        }
    }
}

/// Classification of the scalar outcome, for the report.
fn classify(code: &dyn MemoryCode, case: &FamilyCase, report: &mut FamiliesReport) {
    match code
        .decode(&case.word, &case.erasures)
        .expect("well-formed case")
    {
        DecodeOutcome::Clean { .. } => report.clean += 1,
        DecodeOutcome::Corrected { data, .. } => {
            if data == case.data {
                report.corrected += 1;
            } else {
                report.miscorrected += 1;
            }
        }
        DecodeOutcome::Failure(_) => report.detected += 1,
    }
}

fn record(
    code: &dyn MemoryCode,
    case: &FamilyCase,
    report: &mut FamiliesReport,
    max_divergences: usize,
) {
    let clean = code.encode(&case.data).expect("valid dataword");
    let spent = case.erasures.len() + 2 * case.true_errors(&clean);
    let budget = case.params.capability().budget;
    report.cases += 1;
    if spent < budget {
        report.inside += 1;
    } else if spent == budget {
        report.on_bound += 1;
    } else {
        report.beyond += 1;
    }
    if let Some((kind, detail)) = check_case(code, case) {
        if report.divergences.len() < max_divergences {
            let minimized = shrink_family(code, case.clone(), kind);
            report.divergences.push(Divergence {
                suite: "families",
                kind,
                summary: format!("{}: {detail}", case.params),
                repro: render_family_repro(&minimized, kind, &detail),
            });
        }
        return;
    }
    classify(code, case, report);
}

/// Greedily minimizes a failing family case while the violation `kind`
/// keeps reproducing (see [`shrink_family_with`]).
pub fn shrink_family(code: &dyn MemoryCode, case: FamilyCase, kind: &'static str) -> FamilyCase {
    shrink_family_with(
        code,
        case,
        |c| matches!(check_case(code, c), Some((k, _)) if k == kind),
    )
}

/// Greedy shrink loop with an injected failure predicate: drops
/// erasures, removes or collapses corrupted symbols (working on the XOR
/// delta so data simplification re-encodes cleanly), and zeroes data
/// symbols, to a fixpoint.
pub fn shrink_family_with<F>(code: &dyn MemoryCode, case: FamilyCase, still_fails: F) -> FamilyCase
where
    F: Fn(&FamilyCase) -> bool,
{
    let mut data = case.data.clone();
    let mut delta: Vec<Symbol> = {
        let clean = code.encode(&data).expect("valid dataword");
        case.word.iter().zip(&clean).map(|(w, c)| w ^ c).collect()
    };
    let mut erasures = case.erasures.clone();

    let rebuild = |data: &[Symbol], delta: &[Symbol], erasures: &[usize]| {
        let clean = code.encode(data).expect("valid dataword");
        FamilyCase {
            word: clean.iter().zip(delta).map(|(c, d)| c ^ d).collect(),
            data: data.to_vec(),
            erasures: erasures.to_vec(),
            params: case.params,
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < erasures.len() {
            let mut cand = erasures.clone();
            cand.remove(i);
            if still_fails(&rebuild(&data, &delta, &cand)) {
                erasures = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
        for p in 0..delta.len() {
            if delta[p] == 0 {
                continue;
            }
            let saved = delta[p];
            delta[p] = 0;
            if still_fails(&rebuild(&data, &delta, &erasures)) {
                changed = true;
                continue;
            }
            if saved != 1 {
                delta[p] = 1;
                if still_fails(&rebuild(&data, &delta, &erasures)) {
                    changed = true;
                    continue;
                }
            }
            delta[p] = saved;
        }
        for i in 0..data.len() {
            if data[i] == 0 {
                continue;
            }
            let saved = data[i];
            data[i] = 0;
            if still_fails(&rebuild(&data, &delta, &erasures)) {
                changed = true;
            } else {
                data[i] = saved;
            }
        }
    }
    rebuild(&data, &delta, &erasures)
}

/// The `CodeParams` constructor expression reproducing `params`.
fn params_expr(params: &CodeParams) -> String {
    match params.family() {
        CodeFamily::Rs => format!(
            "CodeParams::new({}, {}, {}).unwrap()",
            params.n(),
            params.k(),
            params.m()
        ),
        CodeFamily::Rm => format!("CodeParams::rm1({}).unwrap()", params.n().trailing_zeros()),
        CodeFamily::Irs => format!(
            "CodeParams::interleaved({}, {}, {}, {}).unwrap()",
            params.inner_n(),
            params.inner_k(),
            params.m(),
            params.depth()
        ),
    }
}

fn symbol_vec_literal(xs: &[Symbol]) -> String {
    let body: Vec<String> = xs.iter().map(ToString::to_string).collect();
    format!("vec![{}]", body.join(", "))
}

/// Renders the minimized case as a ready-to-paste unit test asserting
/// the violated invariant (paste into `crates/codes`).
pub fn render_family_repro(case: &FamilyCase, kind: &'static str, detail: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "#[test]");
    let _ = writeln!(
        out,
        "fn stress_families_regression_{}() {{",
        kind.replace('-', "_")
    );
    let _ = writeln!(
        out,
        "    // found by rsmem-stress (families): {kind} — {detail}"
    );
    let _ = writeln!(
        out,
        "    let code = build({}).unwrap();",
        params_expr(&case.params)
    );
    let _ = writeln!(
        out,
        "    let data: Vec<Symbol> = {};",
        symbol_vec_literal(&case.data)
    );
    let _ = writeln!(
        out,
        "    let word: Vec<Symbol> = {};",
        symbol_vec_literal(&case.word)
    );
    let _ = writeln!(
        out,
        "    let erasures: Vec<usize> = {};",
        shrink::usize_vec_literal(&case.erasures)
    );
    let _ = writeln!(out, "    let out = code.decode(&word, &erasures).unwrap();");
    match kind {
        "panic" | "api-error" => {
            let _ = writeln!(out, "    let _ = out; // must not panic or Err");
        }
        "clean-noncodeword" => {
            let _ = writeln!(
                out,
                "    if let DecodeOutcome::Clean {{ data: d }} = &out {{"
            );
            let _ = writeln!(out, "        assert_eq!(code.encode(d).unwrap(), word);");
            let _ = writeln!(out, "    }}");
        }
        "clean-wrong-data" | "miscorrect-within" | "detect-within" => {
            let _ = writeln!(
                out,
                "    // er + 2·re ≤ the capability budget here, so decoding must return the data."
            );
            let _ = writeln!(out, "    assert_eq!(out.data(), Some(&data[..]));");
        }
        "reencode-mismatch" | "claim-beyond-capability" => {
            let _ = writeln!(
                out,
                "    if let DecodeOutcome::Corrected {{ data: d, codeword, corrections }} = &out {{"
            );
            let _ = writeln!(
                out,
                "        assert_eq!(&code.encode(d).unwrap(), codeword);"
            );
            let _ = writeln!(
                out,
                "        let claimed = corrections.iter().filter(|c| !c.was_erasure).count();"
            );
            let _ = writeln!(
                out,
                "        assert!(erasures.len() + 2 * claimed <= code.capability().budget);"
            );
            let _ = writeln!(out, "    }}");
        }
        "trait-divergence" => {
            let _ = writeln!(
                out,
                "    // The trait object must be bit-identical to the concrete decoder."
            );
            let _ = writeln!(
                out,
                "    let concrete = RsCode::new(code.n(), code.k(), code.symbol_bits()).unwrap();"
            );
            let _ = writeln!(
                out,
                "    assert_eq!(out, concrete.decode(&word, &erasures).unwrap());"
            );
        }
        _ => {
            let _ = writeln!(out, "    let _ = &out;");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Runs `budget` seeded-random cases round-robin across the family zoo
/// and returns the counters and any shrunk divergences.
pub fn run(seed: u64, budget: usize, max_divergences: usize) -> FamiliesReport {
    let mut report = FamiliesReport::default();
    let mut rng = SplitMix64::new(seed);
    let mut progress = rsmem_obs::Progress::new("stress.families", "family sweep");
    let params = zoo();
    let codes: Vec<Box<dyn MemoryCode>> = params
        .iter()
        .map(|&p| build(p).expect("zoo params are valid"))
        .collect();
    let mut corpora: Vec<Vec<FamilyCase>> = vec![Vec::new(); params.len()];

    for i in 0..budget {
        if (i + 1).is_multiple_of(512) {
            progress.tick(
                (i + 1) as u64,
                budget as u64,
                &[("divergences", report.divergences.len() as u64)],
            );
        }
        let idx = i % params.len();
        let p = params[idx];
        let code = codes[idx].as_ref();
        let (n, k) = (p.n(), p.k());
        let budget_cap = p.capability().budget;
        let size = 1u64 << p.m();

        let data: Vec<Symbol> = (0..k).map(|_| rng.below(size) as Symbol).collect();
        let clean = code.encode(&data).expect("valid dataword");

        // Lattice sweep: er up to one past the budget, re pushing
        // er + 2·re a few steps beyond the bound.
        let er = rng.below_usize(budget_cap + 2).min(n);
        let re_cap = (budget_cap / 2 + 2).min(n.saturating_sub(er));
        let re = rng.below_usize(re_cap + 1);

        let mut positions: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut positions);
        let erasures: Vec<usize> = positions[..er].to_vec();
        let mut word = clean.clone();
        for &pos in &erasures {
            // An erased cell reads an arbitrary value — possibly the
            // original one (self-checking flags the cell, not the data).
            word[pos] = rng.below(size) as Symbol;
        }
        for &pos in &positions[er..er + re] {
            word[pos] ^= 1 + rng.below(size - 1) as Symbol;
        }

        let case = FamilyCase {
            params: p,
            data,
            word,
            erasures,
        };
        record(code, &case, &mut report, max_divergences);
        corpora[idx].push(case);
        if corpora[idx].len() >= BATCH_FLUSH {
            check_batch(code, &corpora[idx], &mut report, max_divergences);
            corpora[idx].clear();
        }
    }
    for (idx, corpus) in corpora.iter().enumerate() {
        check_batch(codes[idx].as_ref(), corpus, &mut report, max_divergences);
    }
    progress.finish(
        budget as u64,
        budget as u64,
        &[("divergences", report.divergences.len() as u64)],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_random_sweep_is_clean_and_counts_add_up() {
        let report = run(0xDA7E, 1_600, 8);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.cases, 1_600);
        assert_eq!(
            report.inside + report.on_bound + report.beyond,
            report.cases
        );
        assert_eq!(
            report.clean + report.corrected + report.detected + report.miscorrected,
            report.cases
        );
        // The lattice reaches all three regions.
        assert!(report.inside > 0 && report.on_bound > 0 && report.beyond > 0);
    }

    #[test]
    fn within_capability_case_passes_for_every_family() {
        for p in zoo() {
            let code = build(p).unwrap();
            let data: Vec<Symbol> = (0..p.k())
                .map(|j| (j as u64 % (1 << p.m())) as Symbol)
                .collect();
            let mut word = code.encode(&data).unwrap();
            word[0] ^= 1; // one random error — within every zoo budget
            let case = FamilyCase {
                params: p,
                data,
                word,
                erasures: vec![],
            };
            assert_eq!(check_case(code.as_ref(), &case), None, "{p}");
        }
    }

    #[test]
    fn shrinker_reduces_a_synthetic_rm_violation() {
        // "Position 3 is corrupted" plays the violation (a real decoder
        // divergence is — deliberately — unavailable); the kernel must
        // be a zero dataword with a single bit flip and no erasures.
        let p = CodeParams::rm1(4).unwrap();
        let code = build(p).unwrap();
        let data = vec![1, 0, 1, 1, 0];
        let clean = code.encode(&data).unwrap();
        let mut word = clean.clone();
        word[3] ^= 1; // the "violation"
        word[7] ^= 1; // noise
        let case = FamilyCase {
            params: p,
            data,
            word,
            erasures: vec![1],
        };
        let min = shrink_family_with(code.as_ref(), case, |c| {
            let clean = code.encode(&c.data).unwrap();
            c.word[3] != clean[3]
        });
        assert_eq!(min.data, vec![0; 5]);
        assert!(min.erasures.is_empty());
        let clean = code.encode(&min.data).unwrap();
        let diffs: Vec<usize> = (0..16).filter(|&pos| min.word[pos] != clean[pos]).collect();
        assert_eq!(diffs, vec![3]);
    }

    #[test]
    fn repro_renders_a_compilable_looking_test() {
        let p = CodeParams::interleaved(15, 9, 4, 3).unwrap();
        let code = build(p).unwrap();
        let data = vec![0; p.k()];
        let word = code.encode(&data).unwrap();
        let case = FamilyCase {
            params: p,
            data,
            word,
            erasures: vec![2],
        };
        let text = render_family_repro(&case, "miscorrect-within", "synthetic");
        assert!(text.contains("#[test]"));
        assert!(text.contains("fn stress_families_regression_miscorrect_within()"));
        assert!(text.contains("CodeParams::interleaved(15, 9, 4, 3).unwrap()"));
        assert!(text.contains("assert_eq!(out.data(), Some(&data[..]));"));
    }
}
