//! Differential stress suite for the RS decode chain.
//!
//! Sweeps erasure+error patterns across the capability lattice — strictly
//! inside, exactly on, and beyond `er + 2·re = n − k` — through
//! encode → inject → decode with **both** key-equation back-ends, and
//! checks the invariants the rest of the workspace relies on:
//!
//! * the API never panics and never returns `Err` on well-formed input;
//! * a `Clean` outcome implies the word really is a codeword, and inside
//!   the bound it implies the stored data;
//! * a `Corrected` outcome implies a valid codeword that re-encodes from
//!   its own data (systematic consistency), a claimed pattern within
//!   capability, and — inside the bound — the stored data;
//! * inside the bound a decode never reports `Failure`;
//! * **bounded-distance uniqueness**: if both back-ends return
//!   claim-valid successes for the same received word they must agree
//!   exactly, because two distinct codewords inside claimed-capability
//!   balls of one word would be closer than the minimum distance.

use crate::report::{DecodeReport, Divergence};
use crate::rng::SplitMix64;
use crate::shrink;
use rsmem_code::{syndromes, DecodeOpts, DecodeOutcome, DecoderBackend, RsCode, Symbol};
use rsmem_obs::recorder;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cases accumulated per code before a batched differential flush. Large
/// enough to exercise the batch plane's SoA path, small enough to keep
/// the corpus memory bounded regardless of the sweep budget.
const BATCH_FLUSH: usize = 256;

/// The code zoo the random sweep draws from: the paper's RS(18,16) and
/// RS(36,16), plus small/odd shapes (tiny fields, non-zero first roots,
/// rate extremes) that exercise corner paths cheaply.
pub const CODES: [(usize, usize, u32, u32); 10] = [
    (7, 3, 3, 0),
    (15, 9, 4, 0),
    (15, 11, 4, 1),
    (12, 8, 4, 1),
    (6, 2, 3, 0),
    (3, 1, 2, 0),
    (7, 6, 3, 0),
    (18, 16, 8, 0),
    (36, 16, 8, 112),
    (10, 4, 5, 1),
];

/// One self-contained injection case (everything needed to replay it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeCase {
    /// Codeword length.
    pub n: usize,
    /// Dataword length.
    pub k: usize,
    /// Symbol width in bits.
    pub m: u32,
    /// First consecutive generator root exponent.
    pub b: u32,
    /// The stored dataword.
    pub data: Vec<Symbol>,
    /// The received (corrupted) word.
    pub word: Vec<Symbol>,
    /// Declared erasure positions.
    pub erasures: Vec<usize>,
}

impl DecodeCase {
    /// Builds the case's code (always valid by construction).
    pub fn code(&self) -> RsCode {
        RsCode::with_first_root(self.n, self.k, self.m, self.b).expect("zoo codes are valid")
    }

    /// Number of true random errors: corrupted positions not declared
    /// as erasures.
    pub fn true_errors(&self, clean: &[Symbol]) -> usize {
        (0..self.n)
            .filter(|p| !self.erasures.contains(p) && self.word[*p] != clean[*p])
            .count()
    }
}

/// Checks every decode-chain invariant for `case`; returns the first
/// violation as a stable `(kind, detail)` pair, or `None`.
pub fn check_case(code: &RsCode, case: &DecodeCase) -> Option<(&'static str, String)> {
    let clean = code.encode(&case.data).expect("valid dataword");
    let red = code.parity_symbols();
    let er = case.erasures.len();
    let re = case.true_errors(&clean);
    let within = er + 2 * re <= red;
    let mut successes: Vec<(DecoderBackend, Vec<Symbol>)> = Vec::new();

    for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
        let result = catch_unwind(AssertUnwindSafe(|| {
            code.decode_with(&case.word, &case.erasures, backend)
        }));
        let outcome = match result {
            Err(_) => return Some(("panic", format!("{backend} panicked"))),
            Ok(Err(e)) => {
                return Some((
                    "api-error",
                    format!("{backend} rejected well-formed input: {e}"),
                ))
            }
            Ok(Ok(outcome)) => outcome,
        };
        match &outcome {
            DecodeOutcome::Clean { data } => {
                if !code.is_codeword(&case.word).expect("validated word") {
                    return Some((
                        "clean-noncodeword",
                        format!("{backend} accepted a non-codeword"),
                    ));
                }
                if within && data != &case.data {
                    return Some(("clean-wrong-data", format!("{backend} within bound")));
                }
                successes.push((backend, case.word.clone()));
            }
            DecodeOutcome::Corrected {
                data,
                codeword,
                corrections,
            } => {
                if !code.is_codeword(codeword).expect("validated word") {
                    return Some((
                        "invalid-codeword",
                        format!("{backend} emitted a word with non-zero syndromes"),
                    ));
                }
                if &code.encode(data).expect("valid data") != codeword {
                    return Some((
                        "reencode-mismatch",
                        format!("{backend} data does not re-encode to its codeword"),
                    ));
                }
                let claimed = corrections.iter().filter(|c| !c.was_erasure).count();
                if er + 2 * claimed > red {
                    return Some((
                        "claim-beyond-capability",
                        format!("{backend} claims {er} erasures + {claimed} errors, n−k = {red}"),
                    ));
                }
                if within && data != &case.data {
                    return Some((
                        "miscorrect-within",
                        format!("{backend} with er={er} re={re} inside the bound"),
                    ));
                }
                successes.push((backend, codeword.clone()));
            }
            DecodeOutcome::Failure(failure) => {
                if within {
                    return Some((
                        "detect-within",
                        format!("{backend} reported {failure} with er={er} re={re} ≤ bound"),
                    ));
                }
            }
        }
    }

    if successes.len() == 2 && successes[0].1 != successes[1].1 {
        return Some((
            "backend-divergence",
            format!(
                "{} and {} returned different claim-valid codewords",
                successes[0].0, successes[1].0
            ),
        ));
    }
    None
}

/// Differentially checks [`RsCode::decode_many`] against the scalar
/// per-word decode over a slice of same-code cases: the batch plane is
/// an optimization and must agree **exactly** — same outcome
/// classification, same corrected words, untouched words otherwise. Any
/// disagreement is reported as a `batch-divergence`.
fn check_batch(
    code: &RsCode,
    cases: &[DecodeCase],
    report: &mut DecodeReport,
    max_divergences: usize,
) {
    if cases.is_empty() {
        return;
    }
    let mut push = |case: &DecodeCase, detail: String| {
        if report.divergences.len() < max_divergences {
            report.divergences.push(Divergence {
                suite: "decode",
                kind: "batch-divergence",
                summary: format!(
                    "RS({},{}) m={} b={}: {detail}",
                    case.n, case.k, case.m, case.b
                ),
                repro: shrink::render_decode_repro(case, "batch-divergence", &detail),
            });
        }
    };
    let mut words: Vec<Vec<Symbol>> = cases.iter().map(|c| c.word.clone()).collect();
    let erasures: Vec<Vec<usize>> = cases.iter().map(|c| c.erasures.clone()).collect();
    let batched = match code.decode_many(&mut words, &erasures, &DecodeOpts::default()) {
        Ok(outcomes) => outcomes,
        Err(e) => {
            push(
                &cases[0],
                format!("decode_many rejected a well-formed batch: {e}"),
            );
            return;
        }
    };
    for (i, case) in cases.iter().enumerate() {
        let scalar = code
            .decode(&case.word, &case.erasures)
            .expect("well-formed case");
        if batched[i] != scalar {
            push(
                case,
                format!(
                    "outcome mismatch: batch {:?} vs scalar {scalar:?}",
                    batched[i]
                ),
            );
            continue;
        }
        match &scalar {
            DecodeOutcome::Corrected { codeword, .. } => {
                if &words[i] != codeword {
                    push(
                        case,
                        "in-place corrected word differs from scalar codeword".to_string(),
                    );
                }
            }
            // Clean and Failure must leave the word untouched.
            _ => {
                if words[i] != case.word {
                    push(case, "batch mutated a word it did not correct".to_string());
                }
            }
        }
    }
}

/// Classification of the default back-end's outcome, for the report.
fn classify(code: &RsCode, case: &DecodeCase, report: &mut DecodeReport) {
    match code
        .decode(&case.word, &case.erasures)
        .expect("well-formed case")
    {
        DecodeOutcome::Clean { .. } => report.clean += 1,
        DecodeOutcome::Corrected { data, .. } => {
            if data == case.data {
                report.corrected += 1;
            } else {
                report.miscorrected += 1;
                record_miscorrection_exemplar(code, case);
            }
        }
        DecodeOutcome::Failure(_) => report.detected += 1,
    }
}

/// Freezes a beyond-bound miscorrection for the flight recorder: the
/// exact error/erasure pattern, the received word's syndromes, both
/// back-ends' verdicts and a ready-to-paste repro. These are *legal*
/// outcomes (the pattern exceeded the code's capability), not
/// divergences — which is exactly why they only survive here.
fn record_miscorrection_exemplar(code: &RsCode, case: &DecodeCase) {
    if !recorder::enabled() {
        return;
    }
    recorder::record_exemplar_with("miscorrection", || {
        let verdicts = [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey]
            .iter()
            .map(|&backend| {
                let verdict = match code.decode_with(&case.word, &case.erasures, backend) {
                    Ok(DecodeOutcome::Clean { .. }) => "Clean".to_owned(),
                    Ok(DecodeOutcome::Corrected { data, .. }) => {
                        if data == case.data {
                            "Corrected(original)".to_owned()
                        } else {
                            "Corrected(wrong data)".to_owned()
                        }
                    }
                    Ok(DecodeOutcome::Failure(f)) => format!("Failure({f})"),
                    Err(e) => format!("Err({e})"),
                };
                format!("{backend}: {verdict}")
            })
            .collect();
        let clean = code.encode(&case.data).expect("valid dataword");
        let detail = format!(
            "er={} re={} beyond n−k={}",
            case.erasures.len(),
            case.true_errors(&clean),
            code.parity_symbols()
        );
        recorder::Exemplar {
            code: format!("rs:{},{},{} b0={}", case.n, case.k, case.m, case.b),
            word: case.word.iter().map(|&s| u32::from(s)).collect(),
            erasures: case.erasures.iter().map(|&p| p as u32).collect(),
            syndromes: syndromes(code, &case.word)
                .iter()
                .map(|&s| u32::from(s))
                .collect(),
            verdicts,
            detail,
            repro: shrink::render_decode_repro(case, "miscorrection", "beyond-bound miscorrection"),
            ..recorder::Exemplar::default()
        }
    });
}

fn record(code: &RsCode, case: &DecodeCase, report: &mut DecodeReport, max_divergences: usize) {
    let clean = code.encode(&case.data).expect("valid dataword");
    let budget = case.erasures.len() + 2 * case.true_errors(&clean);
    let red = code.parity_symbols();
    report.cases += 1;
    if budget < red {
        report.inside += 1;
    } else if budget == red {
        report.on_bound += 1;
    } else {
        report.beyond += 1;
    }
    if let Some((kind, detail)) = check_case(code, case) {
        if report.divergences.len() < max_divergences {
            let minimized = shrink::shrink_decode(code, case.clone(), kind);
            report.divergences.push(Divergence {
                suite: "decode",
                kind,
                summary: format!(
                    "RS({},{}) m={} b={}: {detail}",
                    case.n, case.k, case.m, case.b
                ),
                repro: shrink::render_decode_repro(&minimized, kind, &detail),
            });
        }
        // A broken oracle invariant is the rarest event the recorder
        // exists for; freeze the un-shrunk case with full forensics.
        if recorder::enabled() {
            recorder::record_exemplar_with("oracle-divergence", || recorder::Exemplar {
                code: format!("rs:{},{},{} b0={}", case.n, case.k, case.m, case.b),
                word: case.word.iter().map(|&s| u32::from(s)).collect(),
                erasures: case.erasures.iter().map(|&p| p as u32).collect(),
                syndromes: syndromes(code, &case.word)
                    .iter()
                    .map(|&s| u32::from(s))
                    .collect(),
                detail: format!("{kind}: {detail}"),
                repro: shrink::render_decode_repro(case, kind, &detail),
                ..recorder::Exemplar::default()
            });
        }
        return;
    }
    classify(code, case, report);
}

/// Runs `budget` seeded-random cases across the code zoo plus (when
/// `exhaustive_budget > 0`) an exhaustive small-code sweep, and returns
/// the counters and any shrunk divergences.
pub fn run(
    seed: u64,
    budget: usize,
    exhaustive_budget: usize,
    max_divergences: usize,
) -> DecodeReport {
    let mut report = DecodeReport::default();
    let mut rng = SplitMix64::new(seed);
    let mut progress = rsmem_obs::Progress::new("stress.decode", "decode sweep");
    let codes: Vec<RsCode> = CODES
        .iter()
        .map(|&(n, k, m, b)| RsCode::with_first_root(n, k, m, b).expect("zoo codes are valid"))
        .collect();
    // Per-code corpora for the batched differential pass; flushed in
    // BATCH_FLUSH-sized blocks so memory stays bounded.
    let mut corpora: Vec<Vec<DecodeCase>> = vec![Vec::new(); CODES.len()];

    for i in 0..budget {
        if (i + 1).is_multiple_of(512) {
            progress.tick(
                (i + 1) as u64,
                budget as u64,
                &[("divergences", report.divergences.len() as u64)],
            );
            // Piggy-back the time-series sampler on the same rate-limited
            // cadence the progress reporter already uses.
            rsmem_obs::timeseries::tick();
        }
        let idx = i % CODES.len();
        let (n, k, m, b) = CODES[idx];
        let code = &codes[idx];
        let red = code.parity_symbols();
        let size = u64::from(code.field().size());

        let data: Vec<Symbol> = (0..k).map(|_| rng.below(size) as Symbol).collect();
        let clean = code.encode(&data).expect("valid dataword");

        // Lattice sweep: er ∈ 0..=red+1 (one past TooManyErasures), and a
        // random-error count pushing er + 2·re up to bound + 4.
        let er = rng.below_usize(red + 2).min(n);
        let re_cap = (red / 2 + 2).min(n.saturating_sub(er));
        let re = rng.below_usize(re_cap + 1);

        let mut positions: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut positions);
        let erasures: Vec<usize> = positions[..er].to_vec();
        let mut word = clean.clone();
        for &p in &erasures {
            // An erased cell reads an arbitrary value — possibly the
            // original one (self-checking flags the cell, not the data).
            word[p] = rng.below(size) as Symbol;
        }
        for &p in &positions[er..er + re] {
            word[p] ^= 1 + rng.below(size - 1) as Symbol;
        }

        let case = DecodeCase {
            n,
            k,
            m,
            b,
            data,
            word,
            erasures,
        };
        record(code, &case, &mut report, max_divergences);
        corpora[idx].push(case);
        if corpora[idx].len() >= BATCH_FLUSH {
            check_batch(code, &corpora[idx], &mut report, max_divergences);
            corpora[idx].clear();
        }
    }
    for (idx, corpus) in corpora.iter().enumerate() {
        check_batch(&codes[idx], corpus, &mut report, max_divergences);
    }
    progress.finish(
        budget as u64,
        budget as u64,
        &[("divergences", report.divergences.len() as u64)],
    );

    if exhaustive_budget > 0 {
        run_exhaustive(&mut report, exhaustive_budget, max_divergences);
    }
    report
}

/// Exhaustive sweep over RS(7,3) in GF(8): every erasure subset up to
/// `n − k + 1` positions crossed with every error-position subset of
/// weight ≤ 3 and every non-zero magnitude assignment (erasure fill
/// values capped at two free positions), bounded by `budget` cases.
fn run_exhaustive(report: &mut DecodeReport, budget: usize, max_divergences: usize) {
    let (n, k, m, b) = (7usize, 3usize, 3u32, 0u32);
    let code = RsCode::with_first_root(n, k, m, b).expect("valid");
    let red = code.parity_symbols();
    let size = u64::from(code.field().size());
    let data: Vec<Symbol> = vec![1, 5, 2];
    let clean = code.encode(&data).expect("valid dataword");
    let mut progress = rsmem_obs::Progress::new("stress.decode", "exhaustive sweep");
    let mut spent = 0usize;
    let mut corpus: Vec<DecodeCase> = Vec::with_capacity(BATCH_FLUSH);

    for emask in 0u32..(1 << n) {
        let erasures: Vec<usize> = (0..n).filter(|i| emask >> i & 1 == 1).collect();
        if erasures.len() > red + 1 {
            continue;
        }
        for fmask in 0u32..(1 << n) {
            if fmask & emask != 0 {
                continue;
            }
            let errpos: Vec<usize> = (0..n).filter(|i| fmask >> i & 1 == 1).collect();
            if errpos.len() > 3 || erasures.len() + 2 * errpos.len() > red + 4 {
                continue;
            }
            let combos_f = (size - 1).pow(errpos.len() as u32);
            let combos_e = size.pow(erasures.len().min(2) as u32);
            for fc in 0..combos_f {
                for ec in 0..combos_e {
                    if spent >= budget {
                        check_batch(&code, &corpus, report, max_divergences);
                        progress.finish(
                            spent as u64,
                            budget as u64,
                            &[("divergences", report.divergences.len() as u64)],
                        );
                        return;
                    }
                    spent += 1;
                    if spent.is_multiple_of(512) {
                        progress.tick(
                            spent as u64,
                            budget as u64,
                            &[("divergences", report.divergences.len() as u64)],
                        );
                        rsmem_obs::timeseries::tick();
                    }
                    let mut word = clean.clone();
                    let mut f = fc;
                    for &p in &errpos {
                        word[p] ^= 1 + (f % (size - 1)) as Symbol;
                        f /= size - 1;
                    }
                    let mut e = ec;
                    for &p in erasures.iter().take(2) {
                        word[p] = (e % size) as Symbol;
                        e /= size;
                    }
                    let case = DecodeCase {
                        n,
                        k,
                        m,
                        b,
                        data: data.clone(),
                        word,
                        erasures: erasures.clone(),
                    };
                    record(&code, &case, report, max_divergences);
                    corpus.push(case);
                    if corpus.len() >= BATCH_FLUSH {
                        check_batch(&code, &corpus, report, max_divergences);
                        corpus.clear();
                    }
                }
            }
        }
    }
    check_batch(&code, &corpus, report, max_divergences);
    // The lattice ran dry before the budget did.
    progress.finish(
        spent as u64,
        budget as u64,
        &[("divergences", report.divergences.len() as u64)],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_random_sweep_is_clean_and_counts_add_up() {
        let report = run(0xDA7E, 2_000, 0, 8);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.cases, 2_000);
        assert_eq!(
            report.inside + report.on_bound + report.beyond,
            report.cases
        );
        assert_eq!(
            report.clean + report.corrected + report.detected + report.miscorrected,
            report.cases
        );
        // The lattice genuinely reaches all three regions.
        assert!(report.inside > 0 && report.on_bound > 0 && report.beyond > 0);
        // Beyond the bound the decoder sometimes miscorrects (GF(8)/GF(16)
        // members of the zoo make this frequent enough to observe).
        assert!(report.miscorrected > 0);
    }

    #[test]
    fn exhaustive_small_sweep_is_clean() {
        let report = run(1, 0, 30_000, 8);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.cases, 30_000);
    }

    #[test]
    fn batch_differential_over_pinned_corpus_is_clean() {
        // Pinned seeds exercising the random lattice (every zoo code, so
        // every bucket flush path) plus the exhaustive RS(7,3) sweep —
        // both now run decode_many differentially against the scalar
        // decode inside `run`. Divergences here mean the batch plane
        // changed decoder behavior.
        for seed in [0x5EED_CAFEu64, 42] {
            let report = run(seed, 1_500, 4_000, 8);
            assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        }
    }

    #[test]
    fn within_capability_case_passes_all_invariants() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = (0..9).collect();
        let mut word = code.encode(&data).unwrap();
        word[2] ^= 3; // one random error
        word[8] = 0; // one declared erasure
        let case = DecodeCase {
            n: 15,
            k: 9,
            m: 4,
            b: 0,
            data,
            word,
            erasures: vec![8],
        };
        assert_eq!(check_case(&code, &case), None);
    }
}
