//! Offline stand-in for the `rand` crate.
//!
//! The rsmem workspace must build and test in fully network-restricted
//! environments (no crates.io access, empty registry cache). This crate
//! implements exactly the subset of the `rand` 0.8 API the workspace
//! uses — [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] — on top of a
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! It is wired in via `[patch.crates-io]` in the workspace `Cargo.toml`;
//! deleting that patch entry restores the real dependency without any
//! source change. Streams differ from upstream `StdRng` (ChaCha12), so
//! seed-pinned simulation outputs are reproducible *within* this
//! workspace, not against external rand users — none of the tests relies
//! on upstream streams.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. `hi > lo` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Widening-multiply range reduction (bias < span/2^64).
                let hi_word = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo.wrapping_add(hi_word as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let hi_word = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo.wrapping_add(hi_word as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u: f64 = Standard.sample(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi.max(lo + f64::EPSILON * hi.abs()))
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples the [`Standard`] distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }

    /// Samples `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` by expanding it with SplitMix64 —
    /// the same convention upstream rand uses.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman–Vigna).
    /// Fast, passes BigCrush, 2^256 − 1 period — statistically ample for
    /// Monte-Carlo fault injection. Not cryptographic, and its streams
    /// differ from upstream `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0u32..=3);
            assert!(w <= 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn next_u64_through_unsized_ref_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
