//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset `rsmem-bench` uses — `Criterion` builder,
//! `bench_function`, `benchmark_group`/`Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness: calibrate an iteration count, take `sample_size` timed
//! samples, print mean/min/max per iteration (plus throughput when set).
//! No statistics engine, plots, or baseline storage.
//!
//! Wired in via `[patch.crates-io]` in the workspace `Cargo.toml`;
//! removing the patch entry restores the real crate unchanged.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`; the result is black-boxed so
    /// the optimizer cannot elide the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Accepted for source compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` as a named benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, f, None);
        self
    }

    /// Starts a named group whose benchmarks share a throughput label.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// No-op; the real crate prints a final summary here.
    pub fn final_summary(&mut self) {}
}

/// A set of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput reported with each timing.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as `group_name/id`.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_bench(self.criterion, &full, f, self.throughput);
        self
    }

    /// Ends the group (kept for source compatibility).
    pub fn finish(self) {}
}

fn run_bench<F>(cfg: &Criterion, id: &str, mut f: F, throughput: Option<Throughput>)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample costs at
    // least ~1/sample_size of the measurement budget (or 1 ms).
    let floor = (cfg.measurement_time / cfg.sample_size as u32).max(Duration::from_millis(1));
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    loop {
        f(&mut b);
        if b.elapsed >= floor || b.iters >= 1 << 40 {
            break;
        }
        if warm_up_start.elapsed() >= cfg.warm_up_time && b.elapsed > Duration::ZERO {
            // Budget spent: extrapolate the remaining growth in one step.
            let scale = floor.as_secs_f64() / b.elapsed.as_secs_f64();
            b.iters = ((b.iters as f64 * scale).ceil() as u64).max(b.iters + 1);
            f(&mut b);
            break;
        }
        b.iters *= 2;
    }

    let mut per_iter_ns = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);

    print!(
        "{id:<50} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (mean * 1e-9) / (1024.0 * 1024.0);
            print!("  thrpt: {mib_s:.2} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (mean * 1e-9);
            print!("  thrpt: {elem_s:.2} elem/s");
        }
        None => {}
    }
    println!("  ({} samples × {} iters)", cfg.sample_size, b.iters);
}

/// Defines a bench group function, either `criterion_group!(name, t1, t2)`
/// or the block form with an explicit `config =` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim_group");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
