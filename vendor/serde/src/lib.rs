//! Offline stand-in for the `serde` crate.
//!
//! Exists so the workspace's *optional* `serde` dependencies resolve in
//! network-restricted environments. No rsmem crate enables its `serde`
//! feature by default, so this library is resolved but never compiled in
//! tier-1 builds. It does **not** provide the `Serialize`/`Deserialize`
//! derive macros — building with `--features serde` offline is
//! unsupported; remove the `[patch.crates-io]` entry to use the real
//! crate when the registry is reachable.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
