//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/runner/macro subset the rsmem workspace's
//! property tests use, with **deterministic** per-test seeding and **no
//! shrinking** (a failing case prints its assertion; re-running the test
//! reproduces it exactly because the seed is derived from the test name).
//!
//! Wired in via `[patch.crates-io]` in the workspace `Cargo.toml`;
//! removing the patch entry restores the real crate unchanged.

pub mod test_runner {
    //! Deterministic case generation and the run loop.

    /// Runner configuration. Only `cases` is interpreted; the struct is
    //  non-exhaustive-by-convention to keep source compatibility.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a case did not complete: the only variant is an assumption
    /// rejection (`prop_assume!`); assertion failures panic instead.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was filtered out by `prop_assume!`.
        Reject,
    }

    /// The deterministic generator handed to strategies (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds all 256 bits of state from `seed` via SplitMix64.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix(&mut state);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property: generates cases until `config.cases` accept
    /// or the reject budget is exhausted.
    pub struct TestRunner {
        config: ProptestConfig,
        seed_base: u64,
    }

    impl TestRunner {
        /// A runner whose case sequence is a pure function of the test
        /// name, so failures reproduce across runs.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                config,
                seed_base: h,
            }
        }

        /// Runs the property closure; panics (failing the test) if the
        /// reject budget is exhausted before enough cases accept.
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let mut attempt = 0u64;
            while accepted < self.config.cases {
                let mut rng = TestRng::seed_from_u64(self.seed_base.wrapping_add(attempt));
                attempt += 1;
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= self.config.max_global_rejects,
                            "prop_assume! rejected {rejected} cases \
                             (accepted only {accepted}/{})",
                            self.config.cases
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Filters generated values; rejected draws are retried (up to a
        /// bound) inside `generate`.
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!` arms of
        /// differing concrete types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive draws");
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-domain strategy of a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let span = (self.max_inclusive - self.min + 1) as u64;
            self.min + rng.below(span) as usize
        }
    }

    /// Generates `Vec`s whose length lies in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Generates `BTreeSet`s; duplicate draws are retried a bounded
    /// number of times, so the set may come up short of the target size
    /// when the element domain is small (matching upstream semantics
    /// loosely — fine for the workspace's usages, whose minima are 0).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A strategy for ordered sets of `element` with size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);
     $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let mut __runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                __runner.run(|__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Uniform choice among strategies (which may be distinct types).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property (panic-based; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { ::std::assert!($($args)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { ::std::assert_eq!($($args)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { ::std::assert_ne!($($args)+) };
}

/// Filters the current case: a false condition rejects (does not fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, …).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        use crate::test_runner::{ProptestConfig, TestRunner};
        let mut seen_a = Vec::new();
        TestRunner::new(ProptestConfig::with_cases(5), "det").run(|rng| {
            seen_a.push(rng.next_u64());
            Ok(())
        });
        let mut seen_b = Vec::new();
        TestRunner::new(ProptestConfig::with_cases(5), "det").run(|rng| {
            seen_b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(seen_a, seen_b);
        assert_eq!(seen_a.len(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.5f64..2.0, z in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn maps_and_tuples_compose((a, b) in (0u32..8, 0u32..8).prop_map(|(x, y)| (x * 2, y))) {
            prop_assert!(a % 2 == 0 && a < 16 && b < 8);
        }

        #[test]
        fn flat_map_builds_dependent_values(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_picks_only_listed_values(m in prop_oneof![Just(3u32), Just(4), Just(8)]) {
            prop_assert!(m == 3 || m == 4 || m == 8);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn collections_honor_sizes(
            v in prop::collection::vec(0u32..100, 2..6),
            s in prop::collection::btree_set(0usize..50, 0..=6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() <= 6);
        }
    }
}
