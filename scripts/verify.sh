#!/usr/bin/env sh
# Tier-1 verification: build + test the default members, then style gates.
# Usage: scripts/verify.sh   (run from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (default members, warnings are errors)"
cargo clippy --all-targets -- -D warnings

echo "==> service loopback smoke test (boots the daemon on an ephemeral port)"
cargo run -q --release -p rsmem-service --example service_client

echo "==> stress smoke (pinned seed; fails on any divergence)"
target/release/rsmem-cli stress --seed 0xDA7E --budget 100000

echo "==> code-family comparison smoke (RS vs RM vs interleaved RS)"
target/release/rsmem-cli compare --quick >/dev/null

echo "==> flight-recorder smoke (trace a stress run; exemplars must be captured)"
target/release/rsmem-cli trace --trace-json -- stress --budget small > /tmp/rsmem_trace.json
target/release/rsmem-cli check-jsonl < /tmp/rsmem_trace.json
grep -q '"kind":"miscorrection"' /tmp/rsmem_trace.json || {
  echo "no miscorrection exemplar in trace document"; exit 1;
}
rm -f /tmp/rsmem_trace.json

echo "==> JSON-lines tracing smoke (RSMEM_LOG=json output must be strict canonical JSON with trace IDs)"
RSMEM_LOG=json target/release/rsmem-cli sweep fig7 --threads 2 >/dev/null 2>/tmp/rsmem_sweep_events.jsonl
target/release/rsmem-cli check-jsonl < /tmp/rsmem_sweep_events.jsonl
grep -q '"trace_id"' /tmp/rsmem_sweep_events.jsonl || {
  echo "no trace_id in sweep events"; exit 1;
}
rm -f /tmp/rsmem_sweep_events.jsonl

echo "==> profiler smoke (fig7 regeneration under the self-profiler)"
target/release/rsmem-cli profile sweep fig7 >/dev/null

echo "==> observability smoke (metrics history, chunked stream, live dashboard)"
target/release/rsmem-cli serve --addr 127.0.0.1:0 --sample-interval-ms 100 \
  2>/tmp/rsmem_serve_announce.txt &
SERVE_PID=$!
ADDR=""
i=0
while [ "$i" -lt 50 ]; do
  ADDR=$(sed -n 's/.*listening on //p' /tmp/rsmem_serve_announce.txt | head -n 1)
  [ -n "$ADDR" ] && break
  sleep 0.1
  i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "daemon never announced its address"; kill "$SERVE_PID"; exit 1; }
curl -sf "http://$ADDR/healthz" >/dev/null
# The history document and the streamed frames are strict canonical JSON.
curl -sf "http://$ADDR/debug/metrics/history" | target/release/rsmem-cli check-jsonl
STREAM_LINES=$(curl -sfN "http://$ADDR/v1/stream/metrics?interval_ms=100&frames=2" | wc -l)
[ "$STREAM_LINES" -ge 2 ] || { echo "metrics stream delivered $STREAM_LINES frames, wanted 2"; kill "$SERVE_PID"; exit 1; }
# The live dashboard's raw mode must pipe cleanly into check-jsonl.
target/release/rsmem-cli top --url "$ADDR" --interval 100 --frames 2 --raw \
  | target/release/rsmem-cli check-jsonl
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
rm -f /tmp/rsmem_serve_announce.txt

echo "==> bench self-compare smoke (the regression gate must pass a run against itself)"
target/release/rsmem-cli bench --quick --out /tmp/rsmem_bench_a.json >/dev/null
target/release/rsmem-cli bench --compare /tmp/rsmem_bench_a.json /tmp/rsmem_bench_a.json
# A second run on the same build must agree on every fingerprint
# (timing may jitter on a loaded machine, so it only warns here).
target/release/rsmem-cli bench --quick --out /tmp/rsmem_bench_b.json >/dev/null
target/release/rsmem-cli bench --compare /tmp/rsmem_bench_a.json /tmp/rsmem_bench_b.json --warn-timing
rm -f /tmp/rsmem_bench_a.json /tmp/rsmem_bench_b.json

echo "verify: OK"
