//! Beyond the paper: a time-varying fault environment.
//!
//! Space SEU rates are not constant — a solar flare raises the particle
//! flux by one to two orders of magnitude for hours. This example drives
//! the paper's simplex model through a quiet/flare/quiet mission profile
//! and shows (a) how much a short flare dominates the end-of-mission
//! BER, and (b) how the answer changes when the memory scrubs.
//!
//! Run with `cargo run --release --example solar_flare`.

use rsmem_models::mission::{MissionPhase, SimplexMission};
use rsmem_models::units::{SeuRate, Time};
use rsmem_models::{CodeParams, FaultRates, Scrubbing};

fn phase(hours: f64, seu_per_bit_day: f64) -> MissionPhase {
    MissionPhase {
        duration: Time::from_hours(hours),
        rates: FaultRates::transient_only(SeuRate::per_bit_day(seu_per_bit_day)),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quiet = 7.3e-7; // the paper's lowest rate
    let flare = 1.7e-5; // the paper's worst-case rate (≈ 23× quiet)

    println!("simplex RS(18,16), 48-hour store, quiet rate {quiet:e}, flare rate {flare:e}\n");
    println!(
        "{:<44} {:>14} {:>14}",
        "profile", "no scrubbing", "Tsc = 1800 s"
    );

    let profiles: Vec<(&str, Vec<MissionPhase>)> = vec![
        ("48 h quiet", vec![phase(48.0, quiet)]),
        (
            "47 h quiet + 1 h flare",
            vec![phase(47.0, quiet), phase(1.0, flare)],
        ),
        (
            "42 h quiet + 6 h flare at mid-mission",
            vec![phase(21.0, quiet), phase(6.0, flare), phase(21.0, quiet)],
        ),
        ("48 h flare (paper's worst case)", vec![phase(48.0, flare)]),
    ];

    for (label, phases) in profiles {
        let bare = SimplexMission::new(CodeParams::rs18_16(), Scrubbing::None, phases.clone())?;
        let scrubbed = SimplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::every_seconds(1800.0),
            phases,
        )?;
        println!(
            "{label:<44} {:>14.4e} {:>14.4e}",
            bare.ber_at_end()?,
            scrubbed.ber_at_end()?
        );
    }

    println!(
        "\nA six-hour flare carries most of a two-day mission's BER budget; \
         scrubbing\nrecovers the quiet-time accumulation but can only dilute, \
         not eliminate,\nthe flare's contribution."
    );
    Ok(())
}
