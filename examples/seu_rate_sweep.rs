//! Regenerates paper Figures 5 and 6: BER of the simplex and duplex
//! RS(18,16) memories over a 48-hour store under the paper's three SEU
//! rates (7.3e-7, 3.6e-6 and 1.7e-5 errors/bit/day), with no scrubbing
//! and no permanent faults.
//!
//! Run with `cargo run --release --example seu_rate_sweep`.

use rsmem::experiments::{run, ExperimentId};
use rsmem::report;

fn main() -> Result<(), rsmem::Error> {
    for id in [ExperimentId::Fig5, ExperimentId::Fig6] {
        let output = run(id)?;
        let fig = output.figure().expect("figure experiment");
        println!("{}", report::render_figure(fig));
    }

    // The paper's observation: the duplex arrangement does not buy much
    // against *transient* faults (its value is against permanent faults).
    let fig5 = run(ExperimentId::Fig5)?;
    let fig6 = run(ExperimentId::Fig6)?;
    let s = &fig5.figure().expect("figure").series;
    let d = &fig6.figure().expect("figure").series;
    println!("simplex-vs-duplex BER ratio at 48 h (per SEU rate):");
    for (ss, ds) in s.iter().zip(d.iter()) {
        let sv = ss.points.last().expect("points").1;
        let dv = ds.points.last().expect("points").1;
        println!("  λ = {:>8}: duplex/simplex = {:.2}", ss.label, dv / sv);
    }
    Ok(())
}
