//! Mission planning with the extended metrics: reliability, MTTF,
//! expected uptime, and the scrubbing trade-off — the questions the
//! paper's conclusion says its models exist to answer ("assess the
//! viability of SSMMs for long mission time in space exploration").
//!
//! Run with `cargo run --release --example mission_planning`.

use rsmem::scrub::{minimum_scrub_period, ScrubOverhead, ScrubRecommendation};
use rsmem::units::{ErasureRate, SeuRate, Time};
use rsmem::{CodeParams, MemorySystem, Scrubbing};

fn main() -> Result<(), rsmem::Error> {
    // A 24-month mission with mid-range fault exposure.
    let mission = Time::from_months(24.0);
    let seu = SeuRate::per_bit_day(3.6e-6);
    let erasure = ErasureRate::per_symbol_day(1e-7);

    println!("mission horizon: {mission}, λ = 3.6e-6/bit/day, λe = 1e-7/sym/day\n");
    println!(
        "{:<26} {:>14} {:>16} {:>16}",
        "arrangement", "R(mission)", "MTTF", "E[uptime]"
    );

    let candidates: Vec<(&str, MemorySystem)> = vec![
        (
            "simplex RS(18,16)",
            MemorySystem::simplex(CodeParams::rs18_16()),
        ),
        (
            "duplex RS(18,16)",
            MemorySystem::duplex(CodeParams::rs18_16()),
        ),
        (
            "simplex RS(36,16)",
            MemorySystem::simplex(CodeParams::rs36_16()),
        ),
        (
            "duplex + hourly scrub",
            MemorySystem::duplex(CodeParams::rs18_16())
                .with_scrubbing(Scrubbing::every_seconds(3600.0)),
        ),
    ];
    for (label, base) in candidates {
        let system = base.with_seu_rate(seu).with_erasure_rate(erasure);
        let r = system.reliability(mission)?;
        let mttf = system.mttf()?;
        let uptime = system.expected_uptime(mission)?;
        println!(
            "{label:<26} {r:>14.6} {:>13.1} mo {:>13.2} mo",
            mttf.as_months(),
            uptime.as_months()
        );
    }

    // How fast must the duplex scrub to hold BER ≤ 1e-9 over the mission?
    println!("\nscrub advisor: duplex RS(18,16), target BER 1e-9 over the mission");
    let duplex = MemorySystem::duplex(CodeParams::rs18_16())
        .with_seu_rate(seu)
        .with_erasure_rate(erasure);
    match minimum_scrub_period(&duplex, 1e-9, mission, Time::from_seconds(10.0))? {
        ScrubRecommendation::NotNeeded => println!("  no scrubbing needed"),
        ScrubRecommendation::Period {
            period,
            achieved_ber,
        } => {
            println!(
                "  scrub every {:.0} s → BER {achieved_ber:.2e}",
                period.as_seconds()
            );
            // Cost of that policy, assuming a 50 ms scrub pass at 2 energy
            // units per pass.
            let cost = ScrubOverhead::of(period, Time::from_seconds(0.05), 2.0);
            println!(
                "  cost: {:.1} scrubs/day, availability loss {:.2e}, {:.1} energy/day",
                cost.scrubs_per_day, cost.availability_loss, cost.energy_per_day
            );
        }
        ScrubRecommendation::Unachievable { best_ber } => {
            println!(
                "  unachievable by scrubbing alone (best {best_ber:.2e}): permanent\n  \
                 faults dominate — choose the duplex or the wider code instead"
            );
        }
    }
    Ok(())
}
