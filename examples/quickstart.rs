//! Quickstart: configure the paper's memory arrangements and ask the
//! three headline questions — what is the BER over a 48-hour store, how
//! much does scrubbing help, and what does the decoder cost?
//!
//! Run with `cargo run --example quickstart`.

use rsmem::units::{SeuRate, Time, TimeGrid};
use rsmem::{report, CodeParams, MemorySystem, Scrubbing};

fn main() -> Result<(), rsmem::Error> {
    let worst_case_seu = SeuRate::per_bit_day(1.7e-5);
    let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 7);

    // 1. Simplex RS(18,16) — one module, one decoder.
    let simplex = MemorySystem::simplex(CodeParams::rs18_16()).with_seu_rate(worst_case_seu);
    let simplex_curve = simplex.ber_curve(grid.points())?;

    // 2. Duplex RS(18,16) — two modules behind the flag-comparing arbiter.
    let duplex = MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(worst_case_seu);
    let duplex_curve = duplex.ber_curve(grid.points())?;

    // 3. Duplex with 15-minute scrubbing.
    let scrubbed = duplex.with_scrubbing(Scrubbing::every_seconds(900.0));
    let scrubbed_curve = scrubbed.ber_curve(grid.points())?;

    println!("BER under the worst-case SEU rate (1.7e-5 /bit/day):\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "hours", "simplex", "duplex", "duplex+scrub"
    );
    for (i, t) in grid.points().iter().enumerate() {
        println!(
            "{:>8.1}  {:>12.4e}  {:>12.4e}  {:>12.4e}",
            t.as_hours(),
            simplex_curve.ber[i],
            duplex_curve.ber[i],
            scrubbed_curve.ber[i]
        );
    }

    println!(
        "\nMarkov state spaces: simplex = {} states, duplex = {} states",
        simplex.state_count()?,
        duplex.state_count()?
    );

    println!("\nDecoder complexity (paper Section 6):");
    let rows = rsmem::complexity::section6_comparison();
    print!("{}", report::render_complexity(&rows));

    Ok(())
}
