//! Regenerates paper Figure 7 (duplex RS(18,16) under the worst-case SEU
//! rate for four scrubbing periods) and explores the scrubbing trade-off
//! beyond the paper: how fast must scrubbing be for a target BER, and
//! what does the Markov mean-time-to-failure look like?
//!
//! Run with `cargo run --release --example scrubbing_tradeoff`.

use rsmem::experiments::{run, ExperimentId, WORST_CASE_SEU};
use rsmem::units::{SeuRate, Time};
use rsmem::{report, CodeParams, MemorySystem, Scrubbing};

fn main() -> Result<(), rsmem::Error> {
    let out = run(ExperimentId::Fig7)?;
    println!("{}", report::render_figure(out.figure().expect("figure")));

    // Extension: sweep the scrub period over two decades and report the
    // 48-hour BER — where does the paper's "below 1e-6" requirement break?
    println!("scrub-period sweep at λ = {WORST_CASE_SEU:e} /bit/day (BER at 48 h):");
    let t = [Time::from_hours(48.0)];
    let mut crossing: Option<f64> = None;
    for exp in 0..=16 {
        let period_s = 300.0 * 1.6f64.powi(exp);
        let system = MemorySystem::duplex(CodeParams::rs18_16())
            .with_seu_rate(SeuRate::per_bit_day(WORST_CASE_SEU))
            .with_scrubbing(Scrubbing::every_seconds(period_s));
        let ber = system.ber_curve(&t)?.ber[0];
        println!("  Tsc = {period_s:>9.0} s  →  BER = {ber:.3e}");
        if ber > 1e-6 && crossing.is_none() {
            crossing = Some(period_s);
        }
    }
    match crossing {
        Some(p) => println!(
            "\nBER(48 h) crosses 1e-6 near Tsc ≈ {p:.0} s — the paper's \
             'scrub at least hourly' guidance sits just below this point."
        ),
        None => println!("\nBER stayed below 1e-6 for every period swept."),
    }
    Ok(())
}
