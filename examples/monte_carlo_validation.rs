//! Validates the Markov models against the Monte-Carlo simulator, which
//! stores real codewords, injects real bit-flips/stuck-ats, scrubs with
//! the real decoder and arbitrates with the paper's Section-3 logic.
//!
//! Because the paper's flight rates would need ~1e10 trials to observe a
//! failure, the validation runs at *accelerated* rates (a standard
//! technique): the Markov model is evaluated at the same accelerated
//! rates, so agreement is meaningful.
//!
//! Run with `cargo run --release --example monte_carlo_validation`.

use rsmem::units::{ErasureRate, SeuRate, Time};
use rsmem::{CodeParams, DuplexFailCriterion, DuplexOptions, MemorySystem, ScrubTiming};

fn check(
    label: &str,
    system: MemorySystem,
    store: Time,
    trials: usize,
) -> Result<(), rsmem::Error> {
    let analytic = system.ber_curve(&[store])?.fail_probability[0];
    let mc = system.monte_carlo(store, trials, 0xC0FFEE, ScrubTiming::Exponential)?;
    let (lo, hi) = mc.wilson_95;
    let verdict = if analytic >= lo && analytic <= hi {
        "✓ inside 95% CI"
    } else if (analytic - mc.failure_fraction).abs() < 0.05 {
        "≈ within 5 p.p."
    } else {
        "✗ disagree"
    };
    println!(
        "{label:<44} analytic {analytic:.4}  simulated {:.4}  CI [{lo:.4}, {hi:.4}]  {verdict}",
        mc.failure_fraction
    );
    Ok(())
}

fn main() -> Result<(), rsmem::Error> {
    let store = Time::from_days(2.0);
    let trials = 4000;
    println!("accelerated-rate validation, {trials} trials per row:\n");

    // Simplex, transient faults only.
    check(
        "simplex RS(18,16), λ=5e-3/bit/day",
        MemorySystem::simplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(5e-3)),
        store,
        trials,
    )?;

    // Simplex, permanent faults only.
    check(
        "simplex RS(18,16), λe=2e-2/sym/day",
        MemorySystem::simplex(CodeParams::rs18_16())
            .with_erasure_rate(ErasureRate::per_symbol_day(2e-2)),
        store,
        trials,
    )?;

    // Duplex under permanent faults (criteria coincide when λ = 0). The
    // simulator injects faults per module, so validate against the
    // per-module erasure convention (DESIGN.md note 3); the paper's
    // verbatim per-pair rate would sit ~8× lower here.
    check(
        "duplex RS(18,16), λe=5e-2/sym/day (per-module)",
        MemorySystem::duplex(CodeParams::rs18_16())
            .with_erasure_rate(ErasureRate::per_symbol_day(5e-2))
            .with_duplex_options(DuplexOptions {
                erasures_per_module: true,
                ..Default::default()
            }),
        store,
        trials,
    )?;

    // Duplex under transient faults: the real arbiter recovers whenever
    // at least one word decodes (and flags point the right way), so the
    // simulator sits near the EitherWord ablation — BELOW the paper's
    // conservative BothWords curve. Print both models to bracket it.
    println!("\nduplex transient faults — the simulator brackets the two fail criteria:");
    let duplex =
        MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(8e-3));
    let both = duplex.ber_curve(&[store])?.fail_probability[0];
    let either = duplex
        .with_duplex_options(DuplexOptions {
            fail_criterion: DuplexFailCriterion::EitherWord,
            ..Default::default()
        })
        .ber_curve(&[store])?
        .fail_probability[0];
    let mc = duplex.monte_carlo(store, trials, 0xBEEF, ScrubTiming::Exponential)?;
    println!("  BothWords (paper) model: {both:.4}");
    println!("  EitherWord ablation:     {either:.4}");
    println!(
        "  simulated real arbiter:  {:.4} (CI [{:.4}, {:.4}])",
        mc.failure_fraction, mc.wilson_95.0, mc.wilson_95.1
    );
    println!(
        "  silent corruptions: {} of {} trials",
        mc.silent, mc.trials
    );
    Ok(())
}
