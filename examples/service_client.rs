//! A plain-`TcpStream` client for the analysis daemon: runs a
//! scrub-period × SEU-rate config sweep against `POST /v1/analyze`
//! (every config twice, the second pass demonstrating cache hits), then
//! prints the cache statistics scraped from `GET /metrics`.
//!
//! Run against an already-running daemon:
//!
//! ```text
//! cargo run -p rsmem-cli -- serve --addr 127.0.0.1:7373 &
//! RSMEM_SERVICE_ADDR=127.0.0.1:7373 cargo run -p rsmem-service --example service_client
//! ```
//!
//! Without `RSMEM_SERVICE_ADDR`, the example boots an in-process server
//! on an ephemeral port, so it is runnable (and CI-smoke-testable)
//! standalone.

use std::io::{Read, Write};
use std::net::TcpStream;

/// One HTTP/1.1 request over a fresh connection (the daemon speaks
/// `Connection: close`), returning `(status, body)`.
fn http_request(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

fn main() {
    // Use a running daemon when pointed at one; otherwise boot our own.
    let (addr, server) = match std::env::var("RSMEM_SERVICE_ADDR") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let server = rsmem_service::Server::bind(rsmem_service::ServiceConfig {
                addr: "127.0.0.1:0".into(),
                ..Default::default()
            })
            .expect("bind ephemeral server");
            (server.local_addr().to_string(), Some(server))
        }
    };
    println!("sweeping against {addr}\n");

    // The paper's Fig. 7 neighbourhood: duplex RS(18,16), worst-case SEU
    // rate sweep × scrub-period sweep.
    let seu_rates = [7.3e-7, 3.6e-6, 1.7e-5];
    let scrub_periods_s = [900.0, 1800.0, 3600.0];

    println!(
        "{:>12} {:>10} {:>10} {:>8}",
        "seu/bit/day", "scrub [s]", "status", "cached"
    );
    for pass in 0..2 {
        for &seu in &seu_rates {
            for &tsc in &scrub_periods_s {
                let body = format!(
                    "{{\"system\": \"duplex\", \"seu_per_bit_day\": {seu:e}, \
                     \"scrub_period_s\": {tsc}, \"points\": 9}}"
                );
                let (status, payload) = http_request(&addr, "POST", "/v1/analyze", Some(&body));
                assert_eq!(status, 200, "analyze failed: {payload}");
                // Pass 2 must be served from the cache: same bytes, no
                // new solve — verified against /metrics below.
                println!(
                    "{seu:>12.1e} {tsc:>10.0} {status:>10} {:>8}",
                    if pass == 0 { "cold" } else { "warm" }
                );
            }
        }
    }

    let (status, metrics) = http_request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    println!("\ncache statistics from /metrics:");
    for line in metrics.lines() {
        if line.starts_with("rsmem_cache_") || line.starts_with("rsmem_requests_total") {
            println!("  {line}");
        }
    }

    let hits: u64 = metrics
        .lines()
        .find(|l| l.starts_with("rsmem_cache_hits_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("cache hit counter present");
    let expected = (seu_rates.len() * scrub_periods_s.len()) as u64;
    assert!(
        hits >= expected,
        "expected at least {expected} cache hits from the warm pass, saw {hits}"
    );
    println!("\nwarm pass hit the cache {hits} times — the daemon amortized every repeat solve.");

    if let Some(server) = server {
        server.shutdown();
    }
}
