//! The paper's Section-6 decoder complexity analysis — the closed-form
//! latency/area model from the Altera IP-core data — plus an empirical
//! counterpart: timing this crate's software decoder on the same codes.
//!
//! The paper's claim: a simplex RS(36,16) needs >4× the decode latency of
//! the RS(18,16) used by the duplex arrangement (308 vs 74 cycles), and
//! one wide decoder outweighs two narrow ones in area.
//!
//! Run with `cargo run --release --example decoder_complexity`.

use rsmem::{complexity, report, RsCode};
use std::time::Instant;

fn time_decoder(code: &RsCode, errors: usize, reps: u32) -> f64 {
    let data: Vec<u16> = (0..code.k() as u16).collect();
    let clean = code.encode(&data).expect("valid parameters");
    let mut word = clean;
    for i in 0..errors {
        word[(i * 5) % code.n()] ^= 0x1d;
    }
    let start = Instant::now();
    let mut guard = 0usize;
    for _ in 0..reps {
        let out = code.decode(&word, &[]).expect("well-formed word");
        guard += out.data().map_or(0, <[u16]>::len);
    }
    assert!(guard > 0 || errors > code.max_random_errors());
    start.elapsed().as_secs_f64() / reps as f64 * 1e6
}

fn main() -> Result<(), rsmem::Error> {
    println!("closed-form model (paper Section 6):\n");
    let rows = complexity::section6_comparison();
    print!("{}", report::render_complexity(&rows));

    let narrow = RsCode::new(18, 16, 8)?;
    let wide = RsCode::new(36, 16, 8)?;
    let reps = 20_000;

    println!("\nempirical software-decoder latency (µs/decode, this machine):\n");
    println!("{:<22} {:>12} {:>12}", "code", "clean word", "t errors");
    let n_clean = time_decoder(&narrow, 0, reps);
    let n_err = time_decoder(&narrow, narrow.max_random_errors(), reps);
    let w_clean = time_decoder(&wide, 0, reps);
    let w_err = time_decoder(&wide, wide.max_random_errors(), reps);
    println!("{:<22} {:>12.3} {:>12.3}", "RS(18,16)", n_clean, n_err);
    println!("{:<22} {:>12.3} {:>12.3}", "RS(36,16)", w_clean, w_err);
    println!(
        "\nworst-case latency ratio RS(36,16)/RS(18,16): {:.1}x (model predicts {:.1}x)",
        w_err / n_err,
        complexity::decode_cycles(36, 16) as f64 / complexity::decode_cycles(18, 16) as f64
    );
    Ok(())
}
