//! Beyond the paper: multi-bit upsets (MBUs) and interleaving.
//!
//! The paper's Markov models assume each SEU corrupts a single symbol.
//! This example uses the whole-memory array simulator to measure what
//! happens when SEUs flip bursts of adjacent bits instead — and shows
//! that symbol interleaving across codewords restores the models'
//! assumption (and most of the lost reliability).
//!
//! Run with `cargo run --release --example mbu_interleaving`.

use rsmem::SimConfig;
use rsmem_sim::array::{run_simplex_array, ArrayConfig};

fn config(seu: f64, mbu_bits: u32, depth: usize) -> ArrayConfig {
    ArrayConfig {
        base: SimConfig {
            seu_per_bit_day: seu,
            erasure_per_symbol_day: 0.0,
            scrub: None,
            store_days: 2.0,
            ..SimConfig::rs18_16_baseline()
        },
        words: 32,
        mbu_width_bits: mbu_bits,
        interleave_depth: depth,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seu = 1e-3; // accelerated so 200 trials resolve the effect
    let trials = 200;
    println!(
        "simplex RS(18,16) array, 32 words, λ = {seu:e}/bit/day, 2-day store, {trials} trials\n"
    );
    println!(
        "{:<12} {:<12} {:>16} {:>22}",
        "MBU width", "interleave", "word failures", "silent corruptions"
    );
    for (mbu, depth) in [(1u32, 1usize), (2, 1), (4, 1), (2, 2), (4, 4)] {
        let report = run_simplex_array(&config(seu, mbu, depth), trials, 99)?;
        println!(
            "{:<12} {:<12} {:>16.4} {:>22}",
            format!("{mbu} bit(s)"),
            format!("depth {depth}"),
            report.word_failure_fraction,
            report.silent_words
        );
    }
    println!(
        "\nReading the table: widening the upset from 1 to 4 bits multiplies the\n\
         failure fraction (bursts crossing a byte boundary instantly exceed the\n\
         t = 1 correction capability), while interleaving at a depth matching\n\
         the burst width brings it back toward the single-bit baseline — the\n\
         residual gap is the extra single-symbol errors the wider burst still\n\
         injects."
    );
    Ok(())
}
