//! Regenerates paper Figures 8–10: BER over 24 months of permanent
//! storage under permanent-fault (erasure) rates from 1e-4 down to 1e-10
//! per symbol per day, for the simplex RS(18,16), duplex RS(18,16) and
//! simplex RS(36,16) arrangements — and cross-checks the tiny tail values
//! with the SURE-style path-bound solver.
//!
//! Run with `cargo run --release --example permanent_fault_study`.

use rsmem::experiments::{run, ExperimentId, PERMANENT_RATES_PER_SYMBOL_DAY};
use rsmem::units::{ErasureRate, Time};
use rsmem::{report, CodeParams, MemorySystem};

fn main() -> Result<(), rsmem::Error> {
    for id in [ExperimentId::Fig8, ExperimentId::Fig9, ExperimentId::Fig10] {
        let output = run(id)?;
        println!(
            "{}",
            report::render_figure(output.figure().expect("figure"))
        );
    }

    // Cross-check the extreme tail with the path-bound solver: the
    // uniformization result must sit inside the SURE-style bounds even
    // where the probabilities are ~1e-60 and beyond.
    println!("path-bound cross-check at t = 24 months (P_fail, not BER):");
    let t = Time::from_months(24.0);
    for &rate in &PERMANENT_RATES_PER_SYMBOL_DAY {
        let sys = MemorySystem::duplex(CodeParams::rs18_16())
            .with_erasure_rate(ErasureRate::per_symbol_day(rate));
        let p = sys.ber_curve(&[t])?.fail_probability[0];
        let bounds = sys.fail_bounds(t)?;
        let inside = p == 0.0 || bounds.contains_ln(p.ln(), 1e-3);
        println!(
            "  λe = {rate:>7.0e}: uniformization {p:.3e}, bounds [e^{:.2}, e^{:.2}] {}",
            bounds.ln_lower,
            bounds.ln_upper,
            if inside { "✓" } else { "✗ DISAGREE" }
        );
    }
    Ok(())
}
